"""Tests for the agnostic learners (repro.sampling.learner)."""

import numpy as np
import pytest

from repro import (
    DiscreteDistribution,
    MultiscaleLearner,
    SparseFunction,
    draw_empirical,
    learn_histogram,
    learn_multiscale,
    learn_piecewise_polynomial,
    make_hist_dataset,
    normalize_to_distribution,
    opt_k,
)
from repro.sampling.learner import resolve_sample_input


@pytest.fixture(scope="module")
def truth() -> DiscreteDistribution:
    return normalize_to_distribution(make_hist_dataset(n=400, seed=3))


class TestResolveSampleInput:
    def test_passthrough_sparse(self, truth, rng):
        p_hat = draw_empirical(truth, 100, rng)
        assert resolve_sample_input(p_hat) is p_hat

    def test_from_distribution_with_m(self, truth, rng):
        p_hat = resolve_sample_input(truth, m=100, rng=rng)
        assert p_hat.total_mass() == pytest.approx(1.0)

    def test_from_distribution_with_eps(self, truth, rng):
        p_hat = resolve_sample_input(truth, eps=0.3, delta=0.5, rng=rng)
        assert p_hat.n == truth.n

    def test_from_distribution_requires_rng(self, truth):
        with pytest.raises(ValueError, match="rng"):
            resolve_sample_input(truth, m=10)

    def test_from_distribution_requires_m_or_eps(self, truth, rng):
        with pytest.raises(ValueError, match="m or eps"):
            resolve_sample_input(truth, rng=rng)

    def test_from_raw_samples(self):
        p_hat = resolve_sample_input(np.asarray([0, 1, 1]), n=4)
        assert p_hat(1) == pytest.approx(2.0 / 3.0)

    def test_raw_samples_require_n(self):
        with pytest.raises(ValueError, match="universe size"):
            resolve_sample_input(np.asarray([0, 1, 1]))


class TestLearnHistogram:
    def test_output_is_distribution(self, truth, rng):
        learned = learn_histogram(truth, k=10, m=2000, rng=rng)
        assert learned.histogram.is_distribution()

    def test_piece_bound(self, truth, rng):
        learned = learn_histogram(truth, k=10, m=2000, rng=rng, merge_delta=1000.0)
        assert learned.num_pieces <= 21

    def test_error_estimate_close_to_truth(self, truth, rng):
        m = 20000
        learned = learn_histogram(truth, k=10, m=m, rng=rng, merge_delta=1000.0)
        eps_budget = 4.0 / np.sqrt(m)
        assert abs(learned.empirical_error - learned.error_to(truth)) <= eps_budget

    def test_theorem_2_1_error_bound(self, truth, rng):
        """||h - p||_2 <= 2 opt_k + eps with eps ~ 1/sqrt(m)."""
        m = 40000
        floor = opt_k(truth.pmf, 10)
        learned = learn_histogram(truth, k=10, m=m, rng=rng, merge_delta=1.0)
        eps_budget = 4.0 / np.sqrt(m)
        assert learned.error_to(truth) <= 2.0 * floor + 2.0 * eps_budget

    def test_error_shrinks_with_samples(self, truth):
        small = np.mean([
            learn_histogram(truth, k=10, m=300, rng=np.random.default_rng(t)).error_to(truth)
            for t in range(5)
        ])
        large = np.mean([
            learn_histogram(truth, k=10, m=30000, rng=np.random.default_rng(t)).error_to(truth)
            for t in range(5)
        ])
        assert large < small

    def test_from_raw_samples(self, truth, rng):
        samples = truth.sample(1500, rng)
        learned = learn_histogram(samples, k=5, n=truth.n)
        assert learned.histogram.is_distribution()

    def test_from_prebuilt_empirical(self, truth, rng):
        p_hat = draw_empirical(truth, 1500, rng)
        learned = learn_histogram(p_hat, k=5)
        assert learned.empirical is p_hat


class TestMultiscaleLearner:
    def test_budget_bound_every_k(self, truth, rng):
        learner = learn_multiscale(truth, m=5000, rng=rng)
        for k in (1, 2, 5, 10, 25):
            assert learner.histogram_for(k).num_pieces <= 8 * k

    def test_theorem_2_2_error_bound(self, truth, rng):
        m = 40000
        learner = learn_multiscale(truth, m=m, rng=rng)
        eps_budget = 4.0 / np.sqrt(m)
        for k in (5, 10):
            floor = opt_k(truth.pmf, k)
            err = truth.l2_to(learner.histogram_for(k))
            assert err <= 2.0 * floor + 2.0 * eps_budget

    def test_error_estimates_track_truth(self, truth, rng):
        m = 40000
        learner = learn_multiscale(truth, m=m, rng=rng)
        eps_budget = 4.0 / np.sqrt(m)
        for k in (5, 10, 20):
            estimate = learner.error_estimate_for(k)
            actual = truth.l2_to(learner.histogram_for(k))
            assert abs(estimate - actual) <= eps_budget

    def test_one_pass_serves_all_budgets(self, truth, rng):
        p_hat = draw_empirical(truth, 3000, rng)
        learner = MultiscaleLearner(p_hat)
        histograms = [learner.histogram_for(k) for k in (1, 3, 9, 27)]
        pieces = [h.num_pieces for h in histograms]
        assert pieces == sorted(pieces)

    def test_pareto_curve_available(self, truth, rng):
        learner = learn_multiscale(truth, m=2000, rng=rng)
        curve = learner.pareto_curve()
        assert len(curve) == learner.hierarchy.num_levels


class TestLearnPiecewisePolynomial:
    def test_piece_bound(self, truth, rng):
        func = learn_piecewise_polynomial(
            truth, k=5, degree=2, m=3000, rng=rng, merge_delta=1000.0
        )
        assert func.num_pieces <= 11

    def test_degree_recorded(self, truth, rng):
        func = learn_piecewise_polynomial(truth, k=5, degree=2, m=3000, rng=rng)
        assert func.degree <= 2

    def test_mass_approximately_one(self, truth, rng):
        """Polynomial projection also preserves mass exactly (the constant
        component of each piece integrates the data)."""
        func = learn_piecewise_polynomial(truth, k=5, degree=1, m=3000, rng=rng)
        assert func.total_mass() == pytest.approx(1.0, abs=1e-9)

    def test_beats_histogram_on_smooth_truth(self, rng):
        """On a steep ramp distribution, degree-1 pieces learn better.

        The margin holds once the sampling noise (~1/sqrt(m)) is well below
        the histogram's approximation floor, hence the large m.
        """
        ramp = np.linspace(1.0, 9.0, 300)
        p = DiscreteDistribution.from_nonnegative(ramp)
        m = 200000
        hist = learn_histogram(p, k=4, m=m, rng=rng, merge_delta=1.0)
        poly = learn_piecewise_polynomial(p, k=4, degree=1, m=m, rng=rng, merge_delta=1.0)
        assert p.l2_to(poly.to_dense()) < hist.error_to(p)
