"""Tests for the experiment datasets (repro.datasets)."""

import numpy as np
import pytest

from repro import (
    learning_datasets,
    make_dow_dataset,
    make_hist_dataset,
    make_poly_dataset,
    normalize_to_distribution,
    offline_datasets,
    subsample_uniform,
)
from repro.datasets import underlying_hist, underlying_poly


class TestHistDataset:
    def test_defaults_match_paper(self):
        values = make_hist_dataset()
        assert values.size == 1000
        # Figure 1: values roughly in [0, 10].
        assert -3.0 < values.min() and values.max() < 13.0

    def test_deterministic(self):
        np.testing.assert_array_equal(make_hist_dataset(seed=4), make_hist_dataset(seed=4))
        assert not np.array_equal(make_hist_dataset(seed=4), make_hist_dataset(seed=5))

    def test_underlying_is_k_pieces(self):
        signal = underlying_hist(n=500, pieces=7)
        assert signal.num_pieces == 7

    def test_underlying_jumps_are_genuine(self):
        signal = underlying_hist(n=500, pieces=10)
        values = signal.values
        for a, b in zip(values, values[1:]):
            assert abs(a - b) >= (9.5 - 0.5) / 4.0 - 1e-12

    def test_underlying_validation(self):
        with pytest.raises(ValueError, match="pieces"):
            underlying_hist(n=5, pieces=10)

    def test_noise_level(self):
        clean = underlying_hist(n=1000, pieces=10, rng=np.random.default_rng(0)).to_dense()
        noisy = make_hist_dataset(n=1000, pieces=10, noise=0.5, seed=0)
        residual = noisy - clean
        assert 0.3 < residual.std() < 0.7


class TestPolyDataset:
    def test_defaults_match_paper(self):
        values = make_poly_dataset()
        assert values.size == 4000
        # Figure 1: values roughly in [0, 30].
        assert -6.0 < values.min() and values.max() < 36.0

    def test_underlying_is_smooth_degree_5(self):
        signal = underlying_poly(n=1000, degree=5)
        x = np.arange(1000, dtype=np.float64)
        coeffs = np.polynomial.polynomial.polyfit(x, signal, 5)
        recon = np.polynomial.polynomial.polyval(x, coeffs)
        np.testing.assert_allclose(recon, signal, atol=1e-6)

    def test_underlying_validation(self):
        with pytest.raises(ValueError, match="degree"):
            underlying_poly(degree=0)

    def test_deterministic(self):
        np.testing.assert_array_equal(make_poly_dataset(seed=2), make_poly_dataset(seed=2))


class TestDowDataset:
    def test_defaults_match_paper(self):
        values = make_dow_dataset()
        assert values.size == 16384
        assert np.all(values > 0.0)

    def test_positive_everywhere(self):
        for seed in range(3):
            assert np.all(make_dow_dataset(n=2000, seed=seed) > 0.0)

    def test_starts_near_start_level(self):
        values = make_dow_dataset(start=100.0, seed=1)
        assert values[0] == pytest.approx(100.0)

    def test_has_multi_scale_structure(self):
        """The surrogate must not be well fit by few pieces (like the DJIA)."""
        from repro import opt_k

        values = make_dow_dataset(n=2048)
        few = opt_k(values, 4)
        many = opt_k(values, 64)
        assert few > 3.0 * many

    def test_validation(self):
        with pytest.raises(ValueError):
            make_dow_dataset(n=1)
        with pytest.raises(ValueError):
            make_dow_dataset(start=-5.0)

    def test_deterministic(self):
        np.testing.assert_array_equal(make_dow_dataset(seed=9), make_dow_dataset(seed=9))


class TestHelpers:
    def test_subsample_uniform(self):
        values = np.arange(16, dtype=np.float64)
        out = subsample_uniform(values, 4)
        np.testing.assert_array_equal(out, [0.0, 4.0, 8.0, 12.0])

    def test_subsample_factor_one(self):
        values = np.arange(5, dtype=np.float64)
        np.testing.assert_array_equal(subsample_uniform(values, 1), values)

    def test_subsample_validation(self):
        with pytest.raises(ValueError, match="factor"):
            subsample_uniform(np.arange(4, dtype=np.float64), 0)

    def test_normalize_clips_and_sums(self):
        values = np.asarray([2.0, -1.0, 2.0])
        p = normalize_to_distribution(values)
        np.testing.assert_allclose(p.pmf, [0.5, 0.0, 0.5])


class TestDatasetRegistries:
    def test_offline_contents(self):
        data = offline_datasets()
        assert set(data) == {"hist", "poly", "dow"}
        assert data["hist"][1] == 10
        assert data["poly"][1] == 10
        assert data["dow"][1] == 50

    def test_learning_supports_roughly_1000(self):
        """The paper subsamples so all supports are ~1000 (Section 5.2)."""
        data = learning_datasets()
        assert set(data) == {"hist'", "poly'", "dow'"}
        for name, (p, _) in data.items():
            assert 900 <= p.n <= 1100, name

    def test_learning_entries_are_distributions(self):
        for name, (p, k) in learning_datasets().items():
            assert p.pmf.sum() == pytest.approx(1.0)
            assert np.all(p.pmf >= 0.0)
            assert k in (10, 50)
