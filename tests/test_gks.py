"""Tests for the GKS06-style approximate DP (repro.baselines.gks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import gks_histogram, v_optimal_histogram

from helpers import dense_arrays


class TestApproximationGuarantee:
    def test_exact_on_clean_steps(self):
        clean = np.concatenate((np.full(20, 1.0), np.full(20, 5.0)))
        result = gks_histogram(clean, 2, delta=0.5)
        assert result.error == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("delta", [0.1, 0.5, 1.0])
    def test_within_one_plus_delta(self, step_signal, delta):
        opt = v_optimal_histogram(step_signal, 3).error_sq
        result = gks_histogram(step_signal, 3, delta=delta)
        assert result.error_sq <= (1.0 + delta) * opt + 1e-9

    @given(dense_arrays(min_size=3, max_size=25), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_guarantee_property(self, values, k):
        delta = 0.5
        opt = v_optimal_histogram(values, k).error_sq
        result = gks_histogram(values, k, delta=delta)
        assert result.error_sq <= (1.0 + delta) * opt + 1e-7

    def test_smaller_delta_no_worse(self, step_signal):
        loose = gks_histogram(step_signal, 3, delta=2.0)
        tight = gks_histogram(step_signal, 3, delta=0.05)
        assert tight.error_sq <= loose.error_sq + 1e-9


class TestOutputShape:
    def test_pieces_at_most_k(self, step_signal):
        for k in (1, 2, 3, 6):
            result = gks_histogram(step_signal, k, delta=0.5)
            assert result.num_pieces <= k

    def test_k_one(self, step_signal):
        result = gks_histogram(step_signal, 1)
        assert result.num_pieces == 1
        exact = v_optimal_histogram(step_signal, 1)
        assert result.error_sq == pytest.approx(exact.error_sq)

    def test_reported_error_matches_histogram(self, step_signal):
        result = gks_histogram(step_signal, 4, delta=0.5)
        assert result.histogram.l2_to_dense(step_signal) == pytest.approx(
            result.error, abs=1e-8
        )

    def test_breakpoint_diagnostics(self, step_signal):
        result = gks_histogram(step_signal, 4, delta=0.5)
        assert len(result.breakpoints_per_layer) == 3  # layers 1 .. k-1
        assert all(b >= 1 for b in result.breakpoints_per_layer)

    def test_compression_actually_compresses(self, rng):
        """Breakpoint counts should be far below n on smooth inputs."""
        values = np.cumsum(rng.normal(0.0, 1.0, 2000)) + 100.0
        result = gks_histogram(values, 5, delta=1.0)
        assert max(result.breakpoints_per_layer) < 2000 / 2


class TestValidation:
    def test_invalid_k(self, step_signal):
        with pytest.raises(ValueError, match="k must be"):
            gks_histogram(step_signal, 0)

    def test_invalid_delta(self, step_signal):
        with pytest.raises(ValueError, match="delta"):
            gks_histogram(step_signal, 2, delta=0.0)

    def test_k_clamped_to_n(self):
        values = np.asarray([1.0, 5.0, 2.0])
        result = gks_histogram(values, 10, delta=0.5)
        assert result.error == pytest.approx(0.0, abs=1e-9)
