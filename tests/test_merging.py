"""Tests for Algorithm 1 (repro.core.merging) — including the paper's
approximation guarantee verified against the exact optimum."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    SparseFunction,
    brute_force_optimal,
    construct_histogram,
    construct_histogram_partition,
    keep_count,
    target_pieces,
    v_optimal_histogram,
)

from helpers import sparse_functions


class TestParameters:
    def test_target_pieces_formula(self):
        assert target_pieces(10, 1000.0, 1.0) == pytest.approx(21.02)
        assert target_pieces(5, 1.0, 1.0) == pytest.approx(21.0)

    def test_keep_count_formula(self):
        assert keep_count(10, 1000.0) == 10
        assert keep_count(10, 1.0) == 20
        assert keep_count(1, 0.5) == 3

    def test_keep_count_at_least_one(self):
        assert keep_count(1, 1e9) == 1

    def test_invalid_k(self, step_signal):
        with pytest.raises(ValueError, match="k must be"):
            construct_histogram(step_signal, 0)

    def test_invalid_delta(self, step_signal):
        with pytest.raises(ValueError, match="delta"):
            construct_histogram(step_signal, 3, delta=0.0)
        with pytest.raises(ValueError, match="delta"):
            construct_histogram(step_signal, 3, delta=-1.0)

    def test_invalid_gamma(self, step_signal):
        with pytest.raises(ValueError, match="gamma"):
            construct_histogram(step_signal, 3, gamma=0.5)


class TestPieceBounds:
    def test_paper_parameterization_2k_plus_1(self, step_signal):
        """delta=1000, gamma=1 -> at most 2k + 1 pieces (paper Section 5)."""
        for k in (1, 2, 3, 5, 10):
            hist = construct_histogram(step_signal, k, delta=1000.0, gamma=1.0)
            assert hist.num_pieces <= 2 * k + 1

    def test_piece_bound_theorem_3_3(self, step_signal):
        for delta in (0.5, 1.0, 4.0):
            for gamma in (1.0, 5.0):
                hist = construct_histogram(step_signal, 3, delta=delta, gamma=gamma)
                assert hist.num_pieces <= target_pieces(3, delta, gamma)

    @given(sparse_functions(max_n=50), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_piece_bound_property(self, q, k):
        result = construct_histogram_partition(q, k, delta=1.0, gamma=1.0)
        assert result.num_pieces <= target_pieces(k, 1.0, 1.0)


class TestApproximationGuarantee:
    def test_recovers_clean_steps_exactly(self):
        """On a noiseless k-piece input, error must be ~0."""
        clean = np.concatenate((np.full(40, 1.0), np.full(30, 6.0), np.full(30, 3.0)))
        hist = construct_histogram(clean, 3, delta=1.0)
        assert hist.l2_to_dense(clean) == pytest.approx(0.0, abs=1e-9)

    def test_guarantee_on_noisy_steps(self, step_signal):
        opt = v_optimal_histogram(step_signal, 3).error
        for delta in (0.5, 1.0, 2.0):
            hist = construct_histogram(step_signal, 3, delta=delta)
            assert hist.l2_to_dense(step_signal) <= math.sqrt(1 + delta) * opt + 1e-9

    @given(sparse_functions(max_n=18, max_nonzeros=8), st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_theorem_3_3_error_bound(self, q, k):
        """||q_bar_I - q||_2 <= sqrt(1 + delta) * opt_k, every input."""
        delta = 1.0
        result = construct_histogram_partition(q, k, delta=delta, gamma=1.0)
        achieved = result.histogram.l2_to_sparse(q)
        opt = brute_force_optimal(q.to_dense(), k).error
        assert achieved <= math.sqrt(1 + delta) * opt + 1e-7

    @given(sparse_functions(max_n=18, max_nonzeros=8))
    @settings(max_examples=40, deadline=None)
    def test_large_delta_paper_params(self, q):
        """Even delta=1000 stays within its (loose) theoretical bound."""
        k = 2
        result = construct_histogram_partition(q, k, delta=1000.0, gamma=1.0)
        achieved = result.histogram.l2_to_sparse(q)
        opt = brute_force_optimal(q.to_dense(), k).error
        assert achieved <= math.sqrt(1001.0) * opt + 1e-7


class TestMechanics:
    def test_result_diagnostics(self, step_signal):
        result = construct_histogram_partition(step_signal, 3, delta=1.0)
        assert result.rounds >= 1
        assert result.initial_intervals >= result.num_pieces
        assert result.partition.num_intervals == result.histogram.num_pieces

    def test_rounds_logarithmic(self, step_signal):
        """Halving rounds: roughly log2(s / k) iterations (Theorem 3.4)."""
        result = construct_histogram_partition(step_signal, 3, delta=1.0)
        assert result.rounds <= int(np.ceil(np.log2(result.initial_intervals))) + 1

    def test_histogram_is_flattening(self, step_signal):
        """Output values are exactly the interval means of the input."""
        result = construct_histogram_partition(step_signal, 3, delta=1.0)
        for (a, b), v in zip(result.partition, result.histogram.values):
            assert v == pytest.approx(step_signal[a : b + 1].mean())

    def test_accepts_sparse_input(self, sparse_signal):
        hist = construct_histogram(sparse_signal, 2, delta=1.0)
        assert hist.n == sparse_signal.n

    def test_sparse_and_dense_agree(self, step_signal):
        dense_hist = construct_histogram(step_signal, 3, delta=1.0)
        sparse_hist = construct_histogram(
            SparseFunction.from_dense(step_signal), 3, delta=1.0
        )
        assert dense_hist.partition == sparse_hist.partition
        np.testing.assert_allclose(dense_hist.values, sparse_hist.values)

    def test_small_input_no_merging_needed(self):
        q = SparseFunction.from_dense(np.asarray([1.0, 2.0]))
        result = construct_histogram_partition(q, 5, delta=1.0)
        assert result.rounds == 0
        np.testing.assert_allclose(result.histogram.to_dense(), [1.0, 2.0])

    def test_all_zero_input(self):
        q = SparseFunction(100, [], [])
        hist = construct_histogram(q, 2)
        assert hist.num_pieces == 1
        assert hist(50) == 0.0

    def test_k_larger_than_sparsity(self, sparse_signal):
        hist = construct_histogram(sparse_signal, 40, delta=1.0)
        # No merging possible below the target: output must be exact.
        np.testing.assert_allclose(
            hist.to_dense(), sparse_signal.to_dense(), atol=1e-12
        )

    def test_deterministic(self, step_signal):
        a = construct_histogram(step_signal, 3, delta=1.0)
        b = construct_histogram(step_signal, 3, delta=1.0)
        assert a.partition == b.partition

    def test_k_equals_one(self, step_signal):
        hist = construct_histogram(step_signal, 1, delta=1.0)
        assert hist.num_pieces <= target_pieces(1, 1.0, 1.0)

    def test_merging_keeps_worst_pairs_split(self):
        """The pair with the dominant merge error survives a round intact."""
        # One huge jump at position 50, tiny noise elsewhere.
        values = np.r_[np.zeros(50), np.full(50, 100.0)]
        hist = construct_histogram(values, 1, delta=1.0, gamma=1.0)
        # With k=1 the jump must still be represented: error far below the
        # 1-piece optimum shows the split was preserved.
        one_piece = v_optimal_histogram(values, 1).error
        assert hist.l2_to_dense(values) < one_piece / 10.0
