"""Tests for the experiment harness (repro.experiments) on reduced workloads."""

import numpy as np
import pytest

from repro.datasets import normalize_to_distribution
from repro.experiments import ablation, figure1, figure2, lower_bound, pareto, poly, scaling, table1
from repro.experiments.reporting import format_table, rows_to_csv_string, timeit_best, write_csv


@pytest.fixture(scope="module")
def tiny_offline():
    """Miniature offline datasets so harness tests stay fast."""
    rng = np.random.default_rng(0)
    hist = np.repeat(rng.normal(5.0, 2.0, 5), 40) + rng.normal(0, 0.3, 200)
    walk = np.abs(np.cumsum(rng.normal(0, 1.0, 300)) + 50.0)
    return {"mini-hist": (hist, 5), "mini-walk": (walk, 8)}


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("name", "x"), [("a", 1.5), ("bb", 10.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text and "10.250" in text

    def test_format_table_title(self):
        text = format_table(("c",), [("v",)], title="T")
        assert text.splitlines()[0] == "T"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ("a", "b"), [(1, 2), (3, 4)])
        assert path.read_text().splitlines() == ["a,b", "1,2", "3,4"]

    def test_rows_to_csv_string(self):
        text = rows_to_csv_string(("a",), [(1,)])
        assert text.splitlines() == ["a", "1"]

    def test_timeit_best_positive(self):
        assert timeit_best(lambda: sum(range(100)), repeats=2) > 0.0


class TestTable1:
    def test_cells_complete(self, tiny_offline):
        cells = table1.run_table1(
            algorithms=("exactdp", "merging", "dual"),
            datasets=tiny_offline,
            repeats=1,
        )
        assert len(cells) == 2 * 3
        for cell in cells:
            assert cell.time_ms > 0.0
            assert cell.error >= 0.0
            assert cell.rel_time is None  # no fastmerging2 in this run

    def test_relative_error_normalization(self, tiny_offline):
        cells = table1.run_table1(
            algorithms=("exactdp", "merging2"), datasets=tiny_offline, repeats=1
        )
        exact = [c for c in cells if c.algorithm == "exactdp"]
        assert all(c.rel_error == pytest.approx(1.0) for c in exact)
        others = [c for c in cells if c.algorithm != "exactdp"]
        assert all(c.rel_error >= 0.99 for c in others)

    def test_merging_beats_dual_error(self, tiny_offline):
        cells = table1.run_table1(
            algorithms=("merging", "dual"), datasets=tiny_offline, repeats=1
        )
        for ds in tiny_offline:
            merge_err = next(
                c.error for c in cells if c.dataset == ds and c.algorithm == "merging"
            )
            dual_err = next(
                c.error for c in cells if c.dataset == ds and c.algorithm == "dual"
            )
            assert merge_err <= dual_err + 1e-9

    def test_format_output(self, tiny_offline):
        cells = table1.run_table1(
            algorithms=("merging",), datasets=tiny_offline, repeats=1
        )
        text = table1.format_table1(cells)
        assert "== mini-hist ==" in text
        assert "merging" in text

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            table1.run_algorithm("bogus", np.zeros(10), 2)


class TestFigure1:
    def test_summary(self):
        values = np.arange(10, dtype=np.float64)
        stats = figure1.dataset_summary(values)
        assert stats["n"] == 10
        assert stats["min"] == 0.0 and stats["max"] == 9.0

    def test_ascii_sketch_shape(self):
        sketch = figure1.ascii_sketch(np.sin(np.arange(300) / 20.0), width=40, height=8)
        lines = sketch.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 40 for line in lines)

    def test_ascii_sketch_constant_input(self):
        sketch = figure1.ascii_sketch(np.full(100, 3.0), width=10, height=4)
        assert len(sketch.splitlines()) == 4


class TestFigure2:
    def test_points_and_floor(self):
        rng = np.random.default_rng(0)
        p = normalize_to_distribution(np.repeat(rng.random(5) + 0.2, 30))
        points = figure2.run_figure2(
            algorithms=("merging", "merging2"),
            sample_sizes=(200, 800),
            trials=3,
            datasets={"mini": (p, 5)},
        )
        assert len(points) == 2 * 2
        for pt in points:
            assert pt.mean_error > 0.0
            assert pt.std_error >= 0.0
            assert pt.opt_k >= 0.0

    def test_error_improves_with_samples(self):
        rng = np.random.default_rng(1)
        p = normalize_to_distribution(np.repeat(rng.random(5) + 0.2, 30))
        points = figure2.run_figure2(
            algorithms=("merging",),
            sample_sizes=(100, 10000),
            trials=5,
            datasets={"mini": (p, 5)},
        )
        small = next(p_.mean_error for p_ in points if p_.samples == 100)
        large = next(p_.mean_error for p_ in points if p_.samples == 10000)
        assert large < small

    def test_learn_once_unknown_algorithm(self):
        rng = np.random.default_rng(0)
        p = normalize_to_distribution(np.ones(10))
        with pytest.raises(ValueError, match="unknown algorithm"):
            figure2.learn_once("bogus", p, 2, 100, rng)

    def test_format(self):
        rng = np.random.default_rng(0)
        p = normalize_to_distribution(np.repeat(rng.random(4) + 0.2, 10))
        points = figure2.run_figure2(
            algorithms=("merging",), sample_sizes=(100,), trials=2,
            datasets={"mini": (p, 2)},
        )
        text = figure2.format_figure2(points)
        assert "mini" in text and "opt_k floor" in text


class TestExtensions:
    def test_scaling_points(self):
        points = scaling.run_scaling(sizes=(256, 512), k=4, repeats=1)
        assert {p.algorithm for p in points} == {"merging", "fastmerging"}
        by_algo = {}
        for p in points:
            by_algo.setdefault(p.algorithm, []).append(p)
        for algo_points in by_algo.values():
            assert algo_points[0].ratio_to_previous is None
            assert algo_points[1].ratio_to_previous > 0.0
        assert "x_per_doubling" in scaling.format_scaling(points)

    def test_ablation_bounds_hold(self):
        points = ablation.run_ablation(deltas=(0.5, 2.0), gammas=(1.0,), k=5)
        for p in points:
            assert p.pieces <= p.piece_bound
            assert p.error_ratio <= p.worst_case_ratio + 1e-9
        assert "delta" in ablation.format_ablation(points)

    def test_pareto_guarantees(self):
        points = pareto.run_pareto(ks=(1, 2, 4))
        for p in points:
            assert p.pieces <= p.piece_bound
            assert p.error_ratio <= 2.0 + 1e-9
        assert "ratio" in pareto.format_pareto(points)

    def test_pareto_estimate_check(self):
        rows = pareto.run_estimate_check(m=2000, ks=(5,))
        assert len(rows) == 3  # one per learning dataset
        for _, _, _, estimate, truth, gap in rows:
            assert gap == pytest.approx(abs(estimate - truth))

    def test_poly_quality_degree_helps_truth(self):
        points = poly.run_poly_quality(degrees=(0, 3), parameter_budget=16, n=600)
        assert len(points) == 2
        assert all(p.error > 0.0 for p in points)

    def test_fitpoly_scaling_rows(self):
        rows = poly.run_fitpoly_scaling(degrees=(1, 2), n=256, repeats=1)
        assert len(rows) == 2

    def test_lower_bound_upper(self):
        rows = lower_bound.run_upper_bound(sample_sizes=(100, 400), trials=5)
        for m, mean_err, exact, envelope in rows:
            assert exact <= envelope
            assert mean_err <= 1.3 * envelope

    def test_lower_bound_lower(self):
        rows = lower_bound.run_lower_bound(
            eps_values=(0.2,), sample_sizes=(10, 500), trials=500
        )
        errs = {m: e for _, m, e, _ in rows}
        assert errs[500] < errs[10] + 0.05
        assert errs[500] < 0.05
