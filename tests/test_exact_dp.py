"""Tests for the exact V-optimal DP baseline (repro.baselines.exact_dp)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    SparseFunction,
    brute_force_optimal,
    opt_k,
    v_optimal_histogram,
)

from helpers import dense_arrays


class TestSmallExactness:
    def test_exact_on_clean_steps(self):
        clean = np.concatenate((np.full(10, 1.0), np.full(10, 5.0)))
        result = v_optimal_histogram(clean, 2)
        assert result.error == pytest.approx(0.0, abs=1e-9)
        assert result.histogram.pieces() == [(0, 9, 1.0), (10, 19, 5.0)]

    def test_k_one_is_global_mean(self):
        values = np.asarray([1.0, 2.0, 3.0, 10.0])
        result = v_optimal_histogram(values, 1)
        assert result.histogram(0) == pytest.approx(4.0)
        expected = float(np.sum((values - 4.0) ** 2))
        assert result.error_sq == pytest.approx(expected)

    def test_k_equals_n_zero_error(self):
        values = np.asarray([3.0, 1.0, 4.0, 1.0, 5.0])
        result = v_optimal_histogram(values, 5)
        assert result.error == pytest.approx(0.0, abs=1e-12)

    def test_k_larger_than_n_clamped(self):
        values = np.asarray([1.0, 2.0])
        result = v_optimal_histogram(values, 10)
        assert result.error == pytest.approx(0.0, abs=1e-12)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            v_optimal_histogram(np.asarray([1.0]), 0)

    def test_invalid_block(self):
        with pytest.raises(ValueError, match="block"):
            v_optimal_histogram(np.asarray([1.0, 2.0]), 1, block=0)

    def test_accepts_sparse_input(self, sparse_signal):
        result = v_optimal_histogram(sparse_signal, 3)
        assert result.histogram.n == sparse_signal.n

    def test_pieces_at_most_k(self, step_signal):
        for k in (1, 2, 3, 5):
            result = v_optimal_histogram(step_signal, k)
            assert result.num_pieces <= k

    def test_non_monge_counterexample(self):
        """The input that breaks divide-and-conquer DP shortcuts; the
        exhaustive DP must still find the optimum (see module docstring)."""
        values = np.asarray([5.0, 0.0, 0.0, 6.0, 0.0])
        result = v_optimal_histogram(values, 2)
        assert result.error_sq == pytest.approx(27.0)


class TestAgainstBruteForce:
    @given(dense_arrays(min_size=2, max_size=12), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_brute_force(self, values, k):
        dp = v_optimal_histogram(values, k)
        brute = brute_force_optimal(values, k)
        assert dp.error_sq == pytest.approx(brute.error_sq, abs=1e-7)

    @given(
        dense_arrays(min_size=2, max_size=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_size_does_not_change_result(self, values, k, block):
        blocked = v_optimal_histogram(values, k, block=block)
        default = v_optimal_histogram(values, k)
        assert blocked.error_sq == pytest.approx(default.error_sq, abs=1e-9)

    def test_brute_force_rejects_large_input(self):
        with pytest.raises(ValueError, match="n <= 20"):
            brute_force_optimal(np.zeros(25), 2)


class TestStructuredInputs:
    def test_medium_noisy_steps(self, rng):
        clean = np.repeat(rng.normal(0.0, 3.0, 8), 25)
        noisy = clean + rng.normal(0.0, 0.2, clean.size)
        result = v_optimal_histogram(noisy, 8)
        # With k equal to the number of true pieces, the error is close to
        # the noise norm within each true piece.
        flat = np.concatenate(
            [seg - seg.mean() for seg in np.split(noisy, 8)]
        )
        assert result.error <= float(np.linalg.norm(flat)) + 1e-9

    def test_monotone_in_k(self, step_signal):
        errors = [v_optimal_histogram(step_signal, k).error for k in range(1, 8)]
        for a, b in zip(errors, errors[1:]):
            assert b <= a + 1e-9

    def test_block_smaller_than_n(self, step_signal):
        small = v_optimal_histogram(step_signal, 4, block=7)
        large = v_optimal_histogram(step_signal, 4, block=10000)
        assert small.error_sq == pytest.approx(large.error_sq, abs=1e-9)


class TestHistogramOutput:
    def test_histogram_error_matches_reported(self, step_signal):
        result = v_optimal_histogram(step_signal, 3)
        assert result.histogram.l2_to_dense(step_signal) == pytest.approx(
            result.error, abs=1e-8
        )

    def test_values_are_interval_means(self, step_signal):
        result = v_optimal_histogram(step_signal, 3)
        for a, b, v in result.histogram.pieces():
            assert v == pytest.approx(step_signal[a : b + 1].mean())


class TestOptK:
    def test_matches_dp(self, step_signal):
        assert opt_k(step_signal, 3) == pytest.approx(
            v_optimal_histogram(step_signal, 3).error
        )

    def test_opt_k_of_exact_histogram_is_zero(self):
        values = np.repeat([1.0, 4.0, 2.0], 10)
        assert opt_k(values, 3) == pytest.approx(0.0, abs=1e-9)
