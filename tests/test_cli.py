"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestDispatch:
    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0
        assert "figure2" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "figure1",
            "table1",
            "figure2",
            "scaling",
            "ablation",
            "pareto",
            "poly",
            "lower_bound",
        }


class TestRunners:
    """Light end-to-end runs through the real CLI entry points."""

    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "hist" in out and "dow" in out

    def test_figure1_csv(self, tmp_path, capsys):
        prefix = str(tmp_path / "fig1")
        assert main(["figure1", "--csv-prefix", prefix]) == 0
        assert (tmp_path / "fig1_hist.csv").exists()

    def test_ablation_runs(self, capsys):
        assert main(["ablation"]) == 0
        assert "delta" in capsys.readouterr().out

    def test_lower_bound_runs_reduced(self, capsys):
        assert main(["lower_bound", "--trials", "200"]) == 0
        out = capsys.readouterr().out
        assert "1/sqrt(m)" in out and "tester_error" in out

    def test_scaling_csv(self, tmp_path, capsys):
        csv_path = str(tmp_path / "scaling.csv")
        # Reduced ladder via run_scaling is covered elsewhere; the CLI run
        # uses defaults, so keep it to the small sizes by calling the module
        # main with an explicit csv to check the write path.
        from repro.experiments import scaling

        points = scaling.run_scaling(sizes=(256, 512), k=3, repeats=1)
        from repro.experiments.reporting import write_csv

        write_csv(
            csv_path,
            ("algorithm", "n", "time_ms", "ratio"),
            [(p.algorithm, p.n, p.time_ms, p.ratio_to_previous) for p in points],
        )
        assert open(csv_path).readline().startswith("algorithm")


@pytest.mark.slow
class TestSubprocess:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "table1" in result.stdout
