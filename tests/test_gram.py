"""Tests for the discrete Chebyshev (Gram) polynomial basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    evaluate_gram_basis,
    gram_basis_matrix,
    gram_recurrence_coefficients,
)


class TestRecurrenceCoefficients:
    def test_small_cases_by_hand(self):
        # N=2: b_1 = 1*(4-1)/(4*3) = 1/4.
        np.testing.assert_allclose(gram_recurrence_coefficients(2, 1), [0.25])
        # N=3: b_1 = (9-1)/12 = 2/3, b_2 = 4*(9-4)/(4*15) = 1/3.
        np.testing.assert_allclose(
            gram_recurrence_coefficients(3, 2), [2.0 / 3.0, 1.0 / 3.0]
        )

    def test_degree_zero_empty(self):
        assert gram_recurrence_coefficients(5, 0).size == 0

    def test_positive_below_limit(self):
        b = gram_recurrence_coefficients(20, 19)
        assert np.all(b > 0.0)

    def test_rejects_degree_at_num_points(self):
        with pytest.raises(ValueError, match="exceeds"):
            gram_recurrence_coefficients(5, 5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            gram_recurrence_coefficients(0, 0)
        with pytest.raises(ValueError):
            gram_recurrence_coefficients(5, -1)


class TestOrthonormality:
    @pytest.mark.parametrize("num_points,degree", [(2, 1), (5, 3), (30, 8), (200, 12)])
    def test_basis_is_orthonormal(self, num_points, degree):
        basis = gram_basis_matrix(num_points, degree)
        gram = basis @ basis.T
        np.testing.assert_allclose(gram, np.eye(degree + 1), atol=1e-9)

    def test_orthonormal_at_large_n(self):
        """The paper's largest interval length: no overflow, still orthonormal."""
        basis = gram_basis_matrix(16384, 10)
        gram = basis @ basis.T
        np.testing.assert_allclose(gram, np.eye(11), atol=1e-8)

    @given(
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=40)
    def test_orthonormal_property(self, num_points, degree):
        degree = min(degree, num_points - 1)
        basis = gram_basis_matrix(num_points, degree)
        gram = basis @ basis.T
        np.testing.assert_allclose(gram, np.eye(degree + 1), atol=1e-8)


class TestPolynomialStructure:
    def test_degree_zero_is_constant(self):
        basis = gram_basis_matrix(9, 0)
        np.testing.assert_allclose(basis[0], np.full(9, 1.0 / 3.0))

    def test_row_r_is_degree_r_polynomial(self):
        """Each basis row interpolates exactly as a degree-r polynomial."""
        num_points, degree = 40, 5
        basis = gram_basis_matrix(num_points, degree)
        x = np.arange(num_points, dtype=np.float64)
        for r in range(degree + 1):
            coeffs = np.polynomial.polynomial.polyfit(x, basis[r], r)
            recon = np.polynomial.polynomial.polyval(x, coeffs)
            np.testing.assert_allclose(recon, basis[r], atol=1e-8)
            if r >= 1:
                # Leading coefficient nonzero: genuinely degree r.
                assert abs(coeffs[r]) > 1e-12

    def test_symmetry_parity(self):
        """Gram polynomials have the parity of their degree about the centre."""
        num_points, degree = 11, 4
        basis = gram_basis_matrix(num_points, degree)
        flipped = basis[:, ::-1]
        for r in range(degree + 1):
            sign = 1.0 if r % 2 == 0 else -1.0
            np.testing.assert_allclose(basis[r], sign * flipped[r], atol=1e-10)


class TestEvaluation:
    def test_scalar_position(self):
        out = evaluate_gram_basis(3, 2, 10)
        assert out.shape == (3, 1)

    def test_matches_matrix(self):
        basis = gram_basis_matrix(15, 4)
        sampled = evaluate_gram_basis(np.asarray([0, 7, 14]), 4, 15)
        np.testing.assert_allclose(sampled, basis[:, [0, 7, 14]])

    def test_off_grid_evaluation(self):
        """The polynomials extend smoothly between grid points."""
        left = evaluate_gram_basis(np.asarray([3.0]), 3, 10)
        right = evaluate_gram_basis(np.asarray([4.0]), 3, 10)
        mid = evaluate_gram_basis(np.asarray([3.5]), 3, 10)
        # Degree-1 row is linear: midpoint value is the average.
        assert mid[1, 0] == pytest.approx((left[1, 0] + right[1, 0]) / 2.0)

    def test_single_point_universe(self):
        out = evaluate_gram_basis(np.asarray([0]), 0, 1)
        np.testing.assert_allclose(out, [[1.0]])
