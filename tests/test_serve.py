"""Tests for the synopsis serving engine (repro.serve)."""

import io
import time

import numpy as np
import pytest

from repro import (
    Histogram,
    QueryEngine,
    SYNOPSIS_FAMILIES,
    SparseFunction,
    StreamingHistogramLearner,
    SynopsisStore,
    build_synopsis,
    construct_piecewise_polynomial,
    wavelet_synopsis,
)
from repro.__main__ import main
from repro.core.integral import PiecewisePrefix
from repro.serve.engine import PrefixTable


def random_distribution(n: int, seed: int = 7) -> np.ndarray:
    """A positive random signal normalized to unit mass."""
    rng = np.random.default_rng(seed)
    values = np.abs(rng.normal(1.0, 0.5, n)) + 1e-6
    return values / values.sum()


def dense_prefix(dense: np.ndarray) -> np.ndarray:
    return np.concatenate(([0.0], np.cumsum(dense)))


# --------------------------------------------------------------------- #
# prefix_integral on the synopsis classes themselves
# --------------------------------------------------------------------- #


class TestPrefixIntegral:
    def test_histogram_matches_cumsum(self, rng):
        values = rng.normal(0.0, 1.0, 300)
        hist = Histogram.from_dense(np.round(values, 1))
        F = dense_prefix(hist.to_dense())
        xs = np.arange(hist.n + 1)
        np.testing.assert_allclose(hist.prefix_integral(xs), F, atol=1e-12)
        assert hist.prefix_integral(0) == 0.0
        assert hist.prefix_integral(hist.n) == pytest.approx(hist.total_mass())

    def test_sparse_matches_cumsum(self, sparse_signal):
        F = dense_prefix(sparse_signal.to_dense())
        xs = np.arange(sparse_signal.n + 1)
        np.testing.assert_allclose(sparse_signal.prefix_integral(xs), F, atol=1e-12)

    def test_wavelet_matches_cumsum(self, rng):
        values = rng.normal(2.0, 1.0, 230)  # non-power-of-two: padded path
        syn = wavelet_synopsis(values, 20)
        F = dense_prefix(syn.to_dense())
        xs = np.arange(syn.n + 1)
        np.testing.assert_allclose(syn.prefix_integral(xs), F, atol=1e-9)
        assert syn.to_histogram() is syn.to_histogram()  # conversion is cached

    @pytest.mark.parametrize("degree", [0, 1, 3, 5])
    def test_piecewise_poly_matches_cumsum(self, degree):
        values = random_distribution(400, seed=degree)
        pp = construct_piecewise_polynomial(values, 4, degree, delta=1000.0)
        F = dense_prefix(pp.to_dense())
        xs = np.arange(pp.n + 1)
        np.testing.assert_allclose(pp.prefix_integral(xs), F, atol=1e-9)

    @pytest.mark.parametrize("degree", [3, 5, 7])
    def test_piecewise_poly_long_pieces_stay_accurate(self, degree):
        """Regression: high-degree partial sums on ~10k-point pieces.

        A Newton-at-zero / hockey-stick evaluation blows up here (errors
        of 1e2+ at degree 5 on unit-mass signals); the scaled-basis
        interpolation must stay at float precision.
        """
        values = random_distribution(65_536, seed=degree)
        pp = construct_piecewise_polynomial(values, 4, degree, delta=1000.0)
        F = dense_prefix(pp.to_dense())
        xs = np.arange(0, pp.n + 1, 97)
        np.testing.assert_allclose(pp.prefix_integral(xs), F[xs], atol=1e-9)

    def test_scalar_positions(self, rng):
        hist = Histogram.from_dense(np.round(rng.normal(0, 1, 50), 1))
        out = hist.prefix_integral(17)
        assert isinstance(out, float)
        assert out == pytest.approx(float(np.sum(hist.to_dense()[:17])))

    def test_out_of_range_raises(self, sparse_signal):
        with pytest.raises(IndexError):
            sparse_signal.prefix_integral(sparse_signal.n + 1)
        with pytest.raises(IndexError):
            sparse_signal.prefix_integral(-1)


# --------------------------------------------------------------------- #
# Engine queries vs brute-force dense evaluation, every family
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def family_engines():
    """One store + engine with every registered family over one signal."""
    values = random_distribution(500)
    store = SynopsisStore()
    for family in SYNOPSIS_FAMILIES:
        store.register(family, values, family=family, k=6)
    return store, QueryEngine(store)


@pytest.mark.parametrize("family", SYNOPSIS_FAMILIES)
class TestQueriesMatchBruteForce:
    """Every query kind against np brute force on the dense reconstruction."""

    def brute(self, store, family):
        return store[family].synopsis.to_dense()

    def test_range_sum(self, family_engines, family):
        store, engine = family_engines
        F = dense_prefix(self.brute(store, family))
        rng = np.random.default_rng(3)
        a = rng.integers(0, 500, 2000)
        b = rng.integers(0, 500, 2000)
        a, b = np.minimum(a, b), np.maximum(a, b)
        np.testing.assert_allclose(
            engine.range_sum(family, a, b), F[b + 1] - F[a], atol=1e-9
        )

    def test_range_mean(self, family_engines, family):
        store, engine = family_engines
        F = dense_prefix(self.brute(store, family))
        rng = np.random.default_rng(9)
        a = rng.integers(0, 500, 2000)
        b = rng.integers(0, 500, 2000)
        a, b = np.minimum(a, b), np.maximum(a, b)
        np.testing.assert_allclose(
            engine.range_mean(family, a, b),
            (F[b + 1] - F[a]) / (b - a + 1),
            atol=1e-9,
        )
        # A single-point range degenerates to the point mass, exactly.
        xs = rng.integers(0, 500, 100)
        np.testing.assert_array_equal(
            engine.range_mean(family, xs, xs), engine.point_mass(family, xs)
        )

    def test_point_mass(self, family_engines, family):
        store, engine = family_engines
        dense = self.brute(store, family)
        rng = np.random.default_rng(4)
        x = rng.integers(0, 500, 1000)
        np.testing.assert_allclose(engine.point_mass(family, x), dense[x], atol=1e-9)

    def test_cdf(self, family_engines, family):
        store, engine = family_engines
        F = dense_prefix(self.brute(store, family))
        rng = np.random.default_rng(5)
        x = rng.integers(0, 500, 1000)
        np.testing.assert_allclose(
            engine.cdf(family, x), F[x + 1] / F[-1], atol=1e-9
        )

    def test_quantile(self, family_engines, family):
        store, engine = family_engines
        F = dense_prefix(self.brute(store, family))
        prefix = engine.table(family).prefix
        if not (prefix.is_piecewise_linear or prefix.is_nondecreasing):
            with pytest.raises(ValueError, match="not monotone"):
                engine.quantile(family, 0.5)
            return
        rng = np.random.default_rng(6)
        qs = rng.random(500)
        # Contract reference: smallest x with F(x + 1) >= q * total, valid
        # even when the reconstruction dips negative (searchsorted is not).
        crossed = F[None, 1:] >= (qs * F[-1])[:, None]
        want = np.where(crossed.any(axis=1), crossed.argmax(axis=1), 499)
        np.testing.assert_array_equal(engine.quantile(family, qs), want)

    def test_batched_agrees_with_scalar(self, family_engines, family):
        store, engine = family_engines
        rng = np.random.default_rng(7)
        a = rng.integers(0, 500, 25)
        b = rng.integers(0, 500, 25)
        a, b = np.minimum(a, b), np.maximum(a, b)
        batched = engine.range_sum(family, a, b)
        scalars = [engine.range_sum(family, int(ai), int(bi)) for ai, bi in zip(a, b)]
        assert all(isinstance(s, float) for s in scalars)
        np.testing.assert_allclose(batched, scalars, rtol=0, atol=0)
        assert engine.quantile(family, 0.5) == int(engine.quantile(family, np.asarray([0.5]))[0])


class TestQueryValidation:
    def test_bad_ranges(self, family_engines):
        _, engine = family_engines
        with pytest.raises(ValueError):
            engine.range_sum("merging", 10, 5)
        with pytest.raises(ValueError):
            engine.range_sum("merging", -1, 5)
        with pytest.raises(ValueError):
            engine.point_mass("merging", 500)
        with pytest.raises(ValueError):
            engine.quantile("merging", 1.5)

    def test_range_mean_rejects_empty_ranges(self, family_engines):
        # The zero-length edge: an empty range (a > b) has no mean (0/0),
        # so it must fail validation rather than return NaN.
        _, engine = family_engines
        with pytest.raises(ValueError, match="ranges must satisfy"):
            engine.range_mean("merging", 10, 9)
        with pytest.raises(ValueError, match="ranges must satisfy"):
            engine.range_mean("merging", np.asarray([0, 7]), np.asarray([5, 6]))
        out = engine.range_mean("merging", 3, 17)
        assert isinstance(out, float) and np.isfinite(out)

    def test_unknown_name(self, family_engines):
        _, engine = family_engines
        with pytest.raises(KeyError, match="registered"):
            engine.range_sum("nope", 0, 1)

    def test_top_k_buckets(self, family_engines):
        store, engine = family_engines
        hist = store["merging"].synopsis
        buckets = engine.top_k_buckets("merging", 3)
        assert len(buckets) == 3
        masses = [m for _, _, m in buckets]
        assert masses == sorted(masses, reverse=True)
        # Heaviest bucket matches a direct piece-mass computation.
        piece_masses = hist.piece_masses()
        assert masses[0] == pytest.approx(float(np.max(piece_masses)))
        left, right, _ = buckets[0]
        u = int(np.argmax(piece_masses))
        assert (left, right) == hist.partition.interval(u)


# --------------------------------------------------------------------- #
# Store and cache behavior
# --------------------------------------------------------------------- #


class TestStore:
    def test_register_and_summary(self):
        store = SynopsisStore()
        values = random_distribution(128)
        store.register("a", values, family="merging", k=4)
        store.register("b", values, family="wavelet", k=4)
        assert set(store.names()) == {"a", "b"}
        assert "a" in store and len(store) == 2
        meta = {m["name"]: m for m in store.summary()}
        assert meta["a"]["family"] == "merging"
        assert meta["b"]["stored_numbers"] == store["b"].result.stored_numbers
        assert meta["a"]["version"] == 0

    def test_reregister_bumps_version(self):
        store = SynopsisStore()
        values = random_distribution(128)
        store.register("a", values, family="merging", k=4)
        store.register("a", values, family="gks", k=4)
        assert store["a"].version == 1
        assert store["a"].family == "gks"

    def test_unknown_family(self):
        store = SynopsisStore()
        with pytest.raises(KeyError, match="unknown synopsis family"):
            store.register("a", random_distribution(64), family="bogus", k=4)

    def test_build_result_metadata(self):
        values = random_distribution(256)
        result = build_synopsis(values, "merging", 5)
        assert result.n == 256
        assert result.stored_numbers == 2 * result.synopsis.num_pieces
        assert result.error == pytest.approx(result.synopsis.l2_to_dense(values))
        assert result.build_seconds >= 0.0


class TestCache:
    def test_hits_and_misses(self):
        store = SynopsisStore()
        values = random_distribution(128)
        store.register("a", values, family="merging", k=4)
        engine = QueryEngine(store)
        engine.range_sum("a", 0, 10)
        engine.cdf("a", np.arange(20))
        engine.quantile("a", 0.25)
        info = engine.cache_info()
        assert info["misses"] == 1  # one table build, reused by every query
        assert info["hits"] == 2
        assert info["size"] == 1

    def test_eviction_lru(self):
        store = SynopsisStore()
        values = random_distribution(128)
        for name in ("a", "b", "c"):
            store.register(name, values, family="merging", k=4)
        engine = QueryEngine(store, cache_size=2)
        engine.range_sum("a", 0, 10)
        engine.range_sum("b", 0, 10)
        engine.range_sum("a", 0, 10)  # refresh a's recency
        engine.range_sum("c", 0, 10)  # evicts b, the least recent
        assert engine.cache_info()["evictions"] == 1
        before = engine.cache_info()["misses"]
        engine.range_sum("a", 0, 10)  # still cached
        assert engine.cache_info()["misses"] == before
        engine.range_sum("b", 0, 10)  # was evicted -> rebuild
        assert engine.cache_info()["misses"] == before + 1

    def test_reregister_invalidates(self):
        store = SynopsisStore()
        values = random_distribution(128)
        store.register("a", values, family="merging", k=4)
        engine = QueryEngine(store)
        first = engine.range_sum("a", 0, 63)
        store.register("a", np.roll(values, 40), family="merging", k=4)
        second = engine.range_sum("a", 0, 63)
        assert engine.cache_info()["misses"] == 2
        assert first != second

    def test_remove_then_reregister_invalidates(self):
        """Versions never repeat for a name, even across remove()."""
        store = SynopsisStore()
        store.register("a", np.ones(64), family="merging", k=4)
        engine = QueryEngine(store)
        assert engine.range_sum("a", 32, 63) == pytest.approx(32.0)
        store.remove("a")
        store.register("a", np.zeros(64) + np.eye(64)[0], family="merging", k=4)
        assert store["a"].version == 1
        assert engine.range_sum("a", 32, 63) == pytest.approx(0.0)
        assert engine.cache_info()["misses"] == 2

    def test_per_entry_stats(self):
        """Cache counters are attributable per entry, not just globally."""
        store = SynopsisStore()
        values = random_distribution(128)
        for name in ("hot", "cold"):
            store.register(name, values, family="merging", k=4)
        engine = QueryEngine(store)
        for _ in range(5):
            engine.range_sum("hot", 0, 10)
        engine.range_sum("cold", 0, 10)
        info = engine.cache_info()
        assert info["entries"]["hot"] == {"hits": 4, "misses": 1, "evictions": 0}
        assert info["entries"]["cold"] == {"hits": 0, "misses": 1, "evictions": 0}
        assert engine.entry_cache_info("hot")["hits"] == 4
        assert engine.entry_cache_info("never-queried") == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        # Global counters are exactly the per-entry sums.
        assert info["hits"] == sum(s["hits"] for s in info["entries"].values())
        assert info["misses"] == sum(s["misses"] for s in info["entries"].values())

    def test_stale_racing_build_does_not_clobber_newer_table(self):
        """Regression: a table built from a stale snapshot (a refresh
        landed mid-build) must not evict the newer version's cached table."""
        store = SynopsisStore()
        values = random_distribution(128)
        store.register("a", values, family="merging", k=4)
        engine = QueryEngine(store)
        stale_snapshot = store.snapshot("a")  # (version 0, old synopsis)
        store.register("a", np.roll(values, 11), family="merging", k=4)
        engine.range_sum("a", 0, 10)  # caches (a, 1)
        # Emulate the losing thread finishing its stale build now.
        original = store.snapshot
        store.snapshot = lambda name: stale_snapshot
        try:
            version, table = engine.table_versioned("a")
        finally:
            store.snapshot = original
        assert version == 0  # answered from its own consistent snapshot...
        info = engine.cache_info()
        assert info["size"] == 1  # ...but the cache still holds only (a, 1)
        before = info["misses"]
        engine.range_sum("a", 0, 10)  # v1 table survived: pure hit
        assert engine.cache_info()["misses"] == before

    def test_per_entry_evictions_attributed_to_victim(self):
        store = SynopsisStore()
        values = random_distribution(128)
        for name in ("a", "b", "c"):
            store.register(name, values, family="merging", k=4)
        engine = QueryEngine(store, cache_size=2)
        engine.range_sum("a", 0, 10)
        engine.range_sum("b", 0, 10)
        engine.range_sum("c", 0, 10)  # evicts a, the least recent
        info = engine.cache_info()
        assert info["entries"]["a"]["evictions"] == 1
        assert info["entries"]["b"]["evictions"] == 0
        # A version bump's stale-table eviction is charged to the entry too.
        store.register("b", np.roll(values, 5), family="merging", k=4)
        engine.range_sum("b", 0, 10)
        assert engine.entry_cache_info("b")["evictions"] == 1


# --------------------------------------------------------------------- #
# Streaming-backed entries
# --------------------------------------------------------------------- #


class TestStreaming:
    def make_stream(self, seed=11):
        rng = np.random.default_rng(seed)
        learner = StreamingHistogramLearner(n=100, k=3)
        learner.extend(rng.integers(0, 50, 500))
        return rng, learner

    def test_register_stream(self):
        _, learner = self.make_stream()
        store = SynopsisStore()
        entry = store.register_stream("live", learner)
        assert entry.is_streaming
        assert entry.k == learner.k
        assert store.summary()[0]["samples_seen"] == 500

    def test_refresh_bumps_version_and_changes_answers(self):
        rng, learner = self.make_stream()
        store = SynopsisStore()
        store.register_stream("live", learner)
        engine = QueryEngine(store)
        before = engine.cdf("live", 49)
        assert before == pytest.approx(1.0, abs=1e-9)  # all mass in [0, 50)
        learner.extend(rng.integers(50, 100, 2000))  # shift mass right
        store.refresh("live")
        assert store["live"].version == 1
        after = engine.cdf("live", 49)
        assert after < 0.5
        assert engine.cache_info()["misses"] == 2  # old table invalidated

    def test_extend_refreshes_lazily(self):
        rng, learner = self.make_stream()
        store = SynopsisStore()
        store.register_stream("live", learner)
        store.extend("live", rng.integers(0, 50, 10))  # below refresh factor
        assert store["live"].version == 0
        store.extend("live", rng.integers(0, 50, 5000))  # doubling -> rebuild
        assert store["live"].version == 1

    def test_refresh_non_stream_raises(self):
        store = SynopsisStore()
        store.register("a", random_distribution(64), family="merging", k=4)
        with pytest.raises(ValueError, match="not backed by a stream"):
            store.refresh("a")
        with pytest.raises(ValueError, match="not backed by a stream"):
            store.extend("a", np.asarray([1]))


# --------------------------------------------------------------------- #
# Batched throughput: the point of the engine
# --------------------------------------------------------------------- #


class TestBatchedSpeed:
    def test_batched_beats_python_loop_10x(self):
        values = random_distribution(4096, seed=2)
        store = SynopsisStore()
        store.register("s", values, family="merging", k=16)
        engine = QueryEngine(store)
        rng = np.random.default_rng(8)
        B = 10_000
        a = rng.integers(0, 4096, B)
        b = rng.integers(0, 4096, B)
        a, b = np.minimum(a, b), np.maximum(a, b)
        engine.range_sum("s", a, b)  # warm the table

        start = time.perf_counter()
        batched = engine.range_sum("s", a, b)
        batched_time = time.perf_counter() - start

        loop_n = 500  # time a slice of the loop and extrapolate
        start = time.perf_counter()
        looped = [
            engine.range_sum("s", int(a[i]), int(b[i])) for i in range(loop_n)
        ]
        loop_time = (time.perf_counter() - start) * (B / loop_n)

        np.testing.assert_allclose(batched[:loop_n], looped, rtol=0, atol=0)
        assert loop_time > 10.0 * batched_time, (
            f"batched {batched_time * 1e3:.2f}ms vs loop {loop_time * 1e3:.2f}ms"
        )


# --------------------------------------------------------------------- #
# PrefixTable internals and CLI
# --------------------------------------------------------------------- #


class TestPrefixTable:
    def test_rejects_unknown_synopsis(self):
        with pytest.raises(TypeError):
            PrefixTable.from_synopsis(object())

    def test_sparse_function_table(self, sparse_signal):
        table = PrefixTable.from_synopsis(sparse_signal)
        F = dense_prefix(sparse_signal.to_dense())
        np.testing.assert_allclose(
            table.integral(np.arange(sparse_signal.n + 1)), F, atol=1e-12
        )
        assert table.total_mass == pytest.approx(sparse_signal.total_mass())

    def test_zero_mass_cdf_raises(self):
        table = PrefixTable.from_synopsis(
            Histogram.from_dense(np.zeros(8) + np.array([0, 0, 0, 0, 0, 0, 0, 0]))
        )
        with pytest.raises(ValueError, match="positive total mass"):
            table.cdf(3)
        with pytest.raises(ValueError, match="positive total mass"):
            table.quantile(0.5)

    def test_quantile_exact_with_negative_pieces(self):
        """Piecewise-constant quantile honors the first-crossing contract
        even when a piece is negative (the prefix is non-monotone)."""
        dense = np.array([2.0, 2.0, 2.0, -1.0, -1.0, 3.0, 3.0, 3.0])
        table = PrefixTable.from_synopsis(Histogram.from_dense(dense))
        assert table.prefix.is_piecewise_linear
        F = dense_prefix(dense)
        qs = np.concatenate(([0.0, 1.0], np.random.default_rng(12).random(200)))
        targets = qs * F[-1]
        crossed = F[None, 1:] >= targets[:, None]
        want = np.where(crossed.any(axis=1), crossed.argmax(axis=1), dense.size - 1)
        np.testing.assert_array_equal(table.quantile(qs), want)

    def test_quantile_non_monotone_poly_raises(self):
        # Piece 0: S(s) = s^2 - 1 (zero mass, dips negative); piece 1 constant.
        prefix = PiecewisePrefix(
            8,
            np.array([0, 4]),
            np.array([[-1.0, 0.0, 1.0], [2.0, 2.0, 0.0]]),
        )
        table = PrefixTable(prefix)
        assert not prefix.is_piecewise_linear
        assert not prefix.is_nondecreasing
        with pytest.raises(ValueError, match="not monotone"):
            table.quantile(0.5)
        assert table.range_sum(0, 7) == pytest.approx(4.0)

    def test_quantile_monotone_poly_uses_bisection(self):
        # One quadratic piece with S(s) = (1 + s)^2 / 2: nondecreasing.
        prefix = PiecewisePrefix(4, np.array([0]), np.array([[0.5, 1.0, 0.5]]))
        table = PrefixTable(prefix)
        assert not prefix.is_piecewise_linear
        assert prefix.is_nondecreasing
        F = table.integral(np.arange(5))
        qs = np.random.default_rng(13).random(100)
        crossed = F[None, 1:] >= (qs * F[-1])[:, None]
        want = np.where(crossed.any(axis=1), crossed.argmax(axis=1), 3)
        np.testing.assert_array_equal(table.quantile(qs), want)


class TestInnerProduct:
    """The richer-queries satellite: <f, g> between two stored synopses."""

    @pytest.mark.parametrize("family_b", SYNOPSIS_FAMILIES)
    def test_matches_dense_dot_for_every_pair(self, family_engines, family_b):
        store, engine = family_engines
        dense_b = store[family_b].synopsis.to_dense()
        for family_a in ("merging", "poly", "exact"):
            dense_a = store[family_a].synopsis.to_dense()
            got = engine.inner_product(family_a, family_b)
            assert isinstance(got, float)
            assert got == pytest.approx(float(np.dot(dense_a, dense_b)), abs=1e-9)

    def test_symmetric_and_self_is_squared_norm(self, family_engines):
        store, engine = family_engines
        assert engine.inner_product("merging", "wavelet") == pytest.approx(
            engine.inner_product("wavelet", "merging")
        )
        dense = store["merging"].synopsis.to_dense()
        assert engine.inner_product("merging", "merging") == pytest.approx(
            float(np.dot(dense, dense))
        )

    def test_closed_form_used_for_constant_pieces(self, family_engines):
        # The merged-partition closed form is O(k_a + k_b): it must not
        # densify the domain for piecewise-constant tables.
        _, engine = family_engines
        table = engine.table("merging")
        other = engine.table("wavelet")
        calls = []
        original = PrefixTable.point_mass
        try:
            PrefixTable.point_mass = lambda self, x: calls.append(1) or original(
                self, x
            )
            table.inner_product(other)
        finally:
            PrefixTable.point_mass = original
        assert calls == []

    def test_mismatched_domains_raise(self, family_engines):
        _, engine = family_engines
        store2 = SynopsisStore()
        store2.register("short", random_distribution(100), family="merging", k=4)
        other = QueryEngine(store2).table("short")
        with pytest.raises(ValueError, match="matching domains"):
            engine.table("merging").inner_product(other)

    def test_router_pairs_across_shards(self):
        from repro import ShardMap
        from repro.serve.router import ShardRouter

        values = random_distribution(300)
        # Pin the two entries to different shards so the pairing is
        # genuinely cross-shard.
        router = ShardRouter(num_shards=2, shard_map=ShardMap(2, {"a": 0, "b": 1}))
        router.register("a", values, family="merging", k=6)
        router.register("b", values, family="wavelet", k=6)
        dense_a = router["a"].synopsis.to_dense()
        dense_b = router["b"].synopsis.to_dense()
        assert router.inner_product("a", "b") == pytest.approx(
            float(np.dot(dense_a, dense_b))
        )
        with pytest.raises(KeyError, match="registered"):
            router.inner_product("a", "missing")

    def test_frontend_request_kind(self):
        import asyncio

        from repro import ShardMap
        from repro.serve.frontend import AsyncServingFrontend, QueryRequest
        from repro.serve.router import ShardRouter

        values = random_distribution(300)
        router = ShardRouter(num_shards=2, shard_map=ShardMap(2, {"a": 0, "b": 1}))
        router.register("a", values, family="merging", k=6)
        router.register("b", values, family="wavelet", k=6)
        requests = [
            QueryRequest("inner_product", "a", ("b",)),
            QueryRequest("inner_product", "b", ("a",)),
            QueryRequest("inner_product", "a", ("missing",)),
            QueryRequest("range_sum", "a", (0, 99)),
        ]
        with AsyncServingFrontend(router) as frontend:
            results = asyncio.run(frontend.query_batch(requests))
        want = router.inner_product("a", "b")
        assert results[0].ok and results[0].value == pytest.approx(want)
        assert results[1].ok and results[1].value == pytest.approx(want)
        assert not results[2].ok and "missing" in results[2].error
        assert results[3].ok  # a poisoned pairing never fails the batch
        assert results[0].version == router["a"].version


class TestServeCLI:
    def test_query_subcommand(self, capsys):
        assert main(["query", "--n", "512", "--k", "4", "--num-queries", "100"]) == 0
        out = capsys.readouterr().out
        assert "queries/sec" in out and "merging" in out

    def test_query_quantile_kind(self, capsys):
        assert main(
            ["query", "--n", "256", "--kind", "quantile", "--num-queries", "50"]
        ) == 0
        assert "quantile x 50" in capsys.readouterr().out

    def test_query_non_monotone_quantile_errors_cleanly(self):
        # The steps dataset's poly fit dips negative: a clean one-line
        # error, not a traceback (matching the serve loop's handling).
        with pytest.raises(SystemExit, match="not monotone"):
            main(["query", "--family", "poly", "--kind", "quantile",
                  "--num-queries", "10"])

    def test_serve_loop(self):
        from repro.serve.cli import serve_main

        commands = io.StringIO(
            "summary\nrange merging 0 100\npoint merging 5\ncdf merging 100\n"
            "quantile merging 0.5\ntopk merging 2\ncache\nbad cmd\n"
            "range nope 0 1\nquit\n"
        )
        out = io.StringIO()
        assert serve_main(
            ["--n", "512", "--k", "4", "--families", "merging,wavelet"],
            stdin=commands,
            stdout=out,
        ) == 0
        text = out.getvalue()
        assert "serving 2 synopses" in text
        assert "family=merging" in text and "family=wavelet" in text
        assert "mass=" in text
        assert "unknown command 'bad'" in text
        assert "error:" in text

    def test_unknown_command_still_errors(self, capsys):
        assert main(["bogus"]) == 2
        assert "query" in capsys.readouterr().out

    def test_query_inner_product_kind(self, capsys):
        assert main(
            ["query", "--n", "256", "--kind", "inner_product",
             "--num-queries", "20"]
        ) == 0
        assert "inner_product x 20" in capsys.readouterr().out

    def test_query_auto_family_prints_plan(self, capsys):
        assert main(
            ["query", "--n", "512", "--family", "auto", "--max-bytes", "300",
             "--num-queries", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out and "queries/sec" in out

    def test_query_auto_infeasible_budget_errors_cleanly(self):
        with pytest.raises(SystemExit, match="no synopsis family satisfies"):
            main(
                ["query", "--n", "256", "--family", "auto",
                 "--max-bytes", "8", "--max-error", "1e-12"]
            )

    def test_auto_without_budget_flags_errors_cleanly(self):
        # --family auto with no bounds at all would degenerate to the
        # lossless O(n) copy; both CLIs surface the planner's refusal.
        with pytest.raises(SystemExit, match="unconstrained budget"):
            main(["query", "--n", "256", "--family", "auto"])
        from repro.serve.cli import serve_main

        with pytest.raises(SystemExit, match="unconstrained budget"):
            serve_main(["--n", "256", "--families", "auto"])

    def test_serve_auto_family_and_plan_command(self):
        from repro.serve.cli import serve_main

        commands = io.StringIO(
            "summary\nplan auto\nplan merging\ninner auto merging\n"
            "range auto 0 100\nquit\n"
        )
        out = io.StringIO()
        assert serve_main(
            ["--n", "512", "--k", "4", "--families", "merging,auto",
             "--max-error", "2.5"],
            stdin=commands,
            stdout=out,
        ) == 0
        text = out.getvalue()
        assert "planned" in text  # summary marks the auto entry
        assert "chosen:" in text  # plan auto prints the decision record
        assert "not auto-planned" in text  # plan merging explains itself
        assert "probe" in text  # candidate lines include the cost class
