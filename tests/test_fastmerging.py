"""Tests for the fastmerging variant (repro.core.fastmerging)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    brute_force_optimal,
    construct_fast_histogram,
    construct_fast_histogram_partition,
    construct_histogram_partition,
    target_pieces,
    v_optimal_histogram,
)
from repro.datasets import make_hist_dataset

from helpers import sparse_functions


class TestPieceBounds:
    def test_paper_parameterization(self, step_signal):
        for k in (1, 2, 5):
            hist = construct_fast_histogram(step_signal, k, delta=1000.0, gamma=1.0)
            assert hist.num_pieces <= 2 * k + 1

    def test_piece_bound_general(self, step_signal):
        for delta in (0.5, 1.0, 4.0):
            hist = construct_fast_histogram(step_signal, 3, delta=delta, gamma=2.0)
            assert hist.num_pieces <= target_pieces(3, delta, 2.0)

    @given(sparse_functions(max_n=50), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_piece_bound_property(self, q, k):
        result = construct_fast_histogram_partition(q, k, delta=1.0, gamma=1.0)
        assert result.num_pieces <= target_pieces(k, 1.0, 1.0)


class TestQuality:
    def test_recovers_clean_steps(self):
        clean = np.concatenate((np.full(64, 1.0), np.full(64, 9.0)))
        hist = construct_fast_histogram(clean, 2, delta=1.0)
        assert hist.l2_to_dense(clean) == pytest.approx(0.0, abs=1e-9)

    def test_close_to_exact_on_noisy_data(self, step_signal):
        opt = v_optimal_histogram(step_signal, 3).error
        hist = construct_fast_histogram(step_signal, 3, delta=1000.0)
        # 2k+1 pieces vs k pieces: should land within a modest factor.
        assert hist.l2_to_dense(step_signal) <= 1.5 * opt

    @given(sparse_functions(max_n=18, max_nonzeros=8))
    @settings(max_examples=40, deadline=None)
    def test_error_within_loose_bound(self, q):
        """The aggressive variant keeps a constant-factor guarantee."""
        k = 2
        result = construct_fast_histogram_partition(q, k, delta=1.0, gamma=1.0)
        achieved = result.histogram.l2_to_sparse(q)
        opt = brute_force_optimal(q.to_dense(), k).error
        # Empirically the factor is ~sqrt(2); we assert a loose 3x to keep
        # the property robust, still far below trivial.
        assert achieved <= 3.0 * opt + 1e-7


class TestRounds:
    def test_fewer_rounds_than_binary_merging(self):
        values = make_hist_dataset(n=4000, seed=1)
        slow = construct_histogram_partition(values, 10, delta=1000.0)
        fast = construct_fast_histogram_partition(values, 10, delta=1000.0)
        assert fast.rounds < slow.rounds

    def test_round_count_doubly_logarithmic(self):
        """O(log log s) rounds for the aggressive schedule (footnote 3)."""
        values = make_hist_dataset(n=8000, seed=2)
        result = construct_fast_histogram_partition(values, 10, delta=1000.0)
        # O(log log s) aggressive rounds plus an O(1) pair-merge tail.
        loglog = math.ceil(math.log2(max(math.log2(result.initial_intervals), 2)))
        assert result.rounds <= 2 * loglog + 4

    def test_no_merging_needed(self):
        values = np.asarray([1.0, 2.0, 3.0])
        result = construct_fast_histogram_partition(values, 5, delta=1.0)
        assert result.rounds == 0


class TestValidation:
    def test_invalid_k(self, step_signal):
        with pytest.raises(ValueError, match="k must be"):
            construct_fast_histogram(step_signal, 0)

    def test_invalid_delta(self, step_signal):
        with pytest.raises(ValueError, match="delta"):
            construct_fast_histogram(step_signal, 2, delta=-0.5)

    def test_invalid_gamma(self, step_signal):
        with pytest.raises(ValueError, match="gamma"):
            construct_fast_histogram(step_signal, 2, gamma=0.0)

    def test_histogram_is_flattening(self, step_signal):
        result = construct_fast_histogram_partition(step_signal, 3, delta=1.0)
        for (a, b), v in zip(result.partition, result.histogram.values):
            assert v == pytest.approx(step_signal[a : b + 1].mean())
