"""Tests for repro.sampling.distributions.DiscreteDistribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscreteDistribution, Histogram, Partition, SparseFunction


class TestConstruction:
    def test_valid(self):
        p = DiscreteDistribution(np.asarray([0.25, 0.75]))
        assert p.n == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            DiscreteDistribution(np.asarray([1.2, -0.2]))

    def test_rejects_wrong_total(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DiscreteDistribution(np.asarray([0.4, 0.4]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            DiscreteDistribution(np.asarray([]))

    def test_from_nonnegative(self):
        p = DiscreteDistribution.from_nonnegative(np.asarray([2.0, 6.0]))
        np.testing.assert_allclose(p.pmf, [0.25, 0.75])

    def test_from_nonnegative_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="positive total"):
            DiscreteDistribution.from_nonnegative(np.zeros(3))

    def test_from_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            DiscreteDistribution.from_nonnegative(np.asarray([-1.0, 2.0]))

    def test_uniform(self):
        p = DiscreteDistribution.uniform(4)
        np.testing.assert_allclose(p.pmf, np.full(4, 0.25))

    def test_tiny_negative_noise_clipped(self):
        p = DiscreteDistribution(np.asarray([0.5, 0.5 + 1e-12, -1e-12]))
        assert np.all(p.pmf >= 0.0)
        assert p.pmf.sum() == pytest.approx(1.0)


class TestSampling:
    def test_sample_shape_and_range(self, rng):
        p = DiscreteDistribution.uniform(10)
        s = p.sample(500, rng)
        assert s.shape == (500,)
        assert s.min() >= 0 and s.max() <= 9
        assert s.dtype == np.int64

    def test_sample_zero(self, rng):
        p = DiscreteDistribution.uniform(3)
        assert p.sample(0, rng).size == 0

    def test_sample_negative_raises(self, rng):
        p = DiscreteDistribution.uniform(3)
        with pytest.raises(ValueError):
            p.sample(-1, rng)

    def test_point_mass_sampling(self, rng):
        pmf = np.zeros(5)
        pmf[3] = 1.0
        p = DiscreteDistribution(pmf)
        assert np.all(p.sample(100, rng) == 3)

    def test_frequencies_converge(self, rng):
        p = DiscreteDistribution(np.asarray([0.7, 0.2, 0.1]))
        s = p.sample(200_000, rng)
        freqs = np.bincount(s, minlength=3) / s.size
        np.testing.assert_allclose(freqs, p.pmf, atol=0.01)

    def test_deterministic_given_seed(self):
        p = DiscreteDistribution.uniform(10)
        a = p.sample(50, np.random.default_rng(5))
        b = p.sample(50, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestDistances:
    def test_l2_to_array(self):
        p = DiscreteDistribution(np.asarray([0.5, 0.5]))
        q = np.asarray([1.0, 0.0])
        assert p.l2_to(q) == pytest.approx(np.sqrt(0.5))

    def test_l2_to_distribution(self):
        p = DiscreteDistribution(np.asarray([0.5, 0.5]))
        q = DiscreteDistribution(np.asarray([1.0, 0.0]))
        assert p.l2_to(q) == pytest.approx(np.sqrt(0.5))

    def test_l2_to_histogram(self):
        p = DiscreteDistribution(np.asarray([0.25, 0.25, 0.25, 0.25]))
        h = Histogram(Partition(4, [3]), [0.25])
        assert p.l2_to(h) == pytest.approx(0.0)

    def test_l2_to_sparse(self):
        p = DiscreteDistribution(np.asarray([0.5, 0.5, 0.0]))
        q = SparseFunction(3, [0, 1], [0.5, 0.5])
        assert p.l2_to(q) == pytest.approx(0.0)

    def test_l2_to_self_zero(self):
        p = DiscreteDistribution.uniform(7)
        assert p.l2_to(p) == 0.0

    def test_paper_lower_bound_pair_distance(self):
        """||p1 - p2||_2 = 2 sqrt(2) eps (proof of Theorem 3.2)."""
        eps = 0.1
        pmf1 = np.zeros(5)
        pmf2 = np.zeros(5)
        pmf1[0], pmf1[1] = 0.5 + eps, 0.5 - eps
        pmf2[0], pmf2[1] = 0.5 - eps, 0.5 + eps
        p1, p2 = DiscreteDistribution(pmf1), DiscreteDistribution(pmf2)
        assert p1.l2_to(p2) == pytest.approx(2.0 * np.sqrt(2.0) * eps)

    def test_hellinger_formula(self):
        """h^2(p1, p2) = 1 - sqrt(1 - 4 eps^2) for the hard pair."""
        eps = 0.2
        pmf1 = np.asarray([0.5 + eps, 0.5 - eps])
        pmf2 = np.asarray([0.5 - eps, 0.5 + eps])
        p1, p2 = DiscreteDistribution(pmf1), DiscreteDistribution(pmf2)
        expected = np.sqrt(1.0 - np.sqrt(1.0 - 4.0 * eps * eps))
        assert p1.hellinger_to(p2) == pytest.approx(expected)

    def test_hellinger_bounds(self):
        p = DiscreteDistribution(np.asarray([1.0, 0.0]))
        q = DiscreteDistribution(np.asarray([0.0, 1.0]))
        assert p.hellinger_to(q) == pytest.approx(1.0)
        assert p.hellinger_to(p) == pytest.approx(0.0)

    def test_total_variation(self):
        p = DiscreteDistribution(np.asarray([1.0, 0.0]))
        q = DiscreteDistribution(np.asarray([0.5, 0.5]))
        assert p.total_variation_to(q) == pytest.approx(0.5)

    def test_size_mismatch(self):
        p = DiscreteDistribution.uniform(3)
        q = DiscreteDistribution.uniform(4)
        with pytest.raises(ValueError, match="universe"):
            p.hellinger_to(q)
        with pytest.raises(ValueError, match="universe"):
            p.total_variation_to(q)

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=20)
    def test_metric_sanity_property(self, n):
        rng = np.random.default_rng(n)
        p = DiscreteDistribution.from_nonnegative(rng.random(n) + 0.01)
        q = DiscreteDistribution.from_nonnegative(rng.random(n) + 0.01)
        assert 0.0 <= p.hellinger_to(q) <= 1.0 + 1e-12
        assert 0.0 <= p.total_variation_to(q) <= 1.0 + 1e-12
        assert p.hellinger_to(q) == pytest.approx(q.hellinger_to(p))
