"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro import (
    DiscreteDistribution,
    construct_fast_histogram,
    construct_hierarchical_histogram,
    construct_histogram,
    construct_piecewise_polynomial,
    draw_empirical,
    dual_histogram,
    gks_histogram,
    learn_histogram,
    learn_multiscale,
    make_dow_dataset,
    make_hist_dataset,
    make_poly_dataset,
    normalize_to_distribution,
    opt_k,
    v_optimal_histogram,
)


class TestOfflinePipeline:
    """Table 1 in miniature: all algorithms on one dataset, ordered sanely."""

    @pytest.fixture(scope="class")
    def workload(self):
        return make_hist_dataset(n=500, seed=11), 10

    def test_error_ordering(self, workload):
        values, k = workload
        exact = v_optimal_histogram(values, k).error
        merging = construct_histogram(values, k, delta=1000.0).l2_to_dense(values)
        fast = construct_fast_histogram(values, k, delta=1000.0).l2_to_dense(values)
        dual = dual_histogram(values, k).error
        gks = gks_histogram(values, k, delta=0.1).error

        # exactdp <= gks <= (1 + delta) exactdp; merging variants close.
        assert exact <= merging + 1e-9 or merging <= 1.1 * exact
        assert exact - 1e-9 <= gks <= np.sqrt(1.1) * exact + 1e-9
        assert merging <= dual + 1e-9
        assert fast <= 1.25 * merging

    def test_all_respect_their_piece_budgets(self, workload):
        values, k = workload
        assert v_optimal_histogram(values, k).num_pieces <= k
        assert dual_histogram(values, k).num_pieces <= k
        assert gks_histogram(values, k).num_pieces <= k
        assert construct_histogram(values, k, delta=1000.0).num_pieces <= 2 * k + 1


class TestLearningPipeline:
    """Figure 2 in miniature: sample -> learn -> compare with truth."""

    @pytest.fixture(scope="class")
    def truth(self):
        return normalize_to_distribution(make_hist_dataset(n=500, seed=21))

    def test_two_stage_learner_converges(self, truth):
        errors = []
        for m in (500, 50000):
            rng = np.random.default_rng(99)
            learned = learn_histogram(truth, k=10, m=m, rng=rng, merge_delta=1000.0)
            errors.append(learned.error_to(truth))
        assert errors[1] < errors[0]
        # At m = 50000 the error approaches the opt_10 floor.
        floor = opt_k(truth.pmf, 10)
        assert errors[1] <= 2.0 * floor + 4.0 / np.sqrt(50000)

    def test_multiscale_consistent_with_single_scale(self, truth):
        rng = np.random.default_rng(7)
        p_hat = draw_empirical(truth, 20000, rng)
        single = construct_histogram(p_hat, 10, delta=1000.0)
        multi = learn_multiscale(p_hat).histogram_for(10)
        # Both land within the Theorem bounds of each other.
        assert truth.l2_to(multi) <= 2.5 * truth.l2_to(single) + 0.01

    def test_universe_size_independence(self):
        """Padding the universe with zero-mass region must not change the
        learner's work or meaningfully change its output (the paper's key
        claim: complexity independent of n)."""
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        base = np.repeat([4.0, 1.0, 6.0, 2.0], 50)
        small = DiscreteDistribution.from_nonnegative(base)
        padded = DiscreteDistribution.from_nonnegative(
            np.concatenate((base, np.zeros(100000)))
        )
        learned_small = learn_histogram(small, k=4, m=4000, rng=rng_a)
        learned_padded = learn_histogram(padded, k=4, m=4000, rng=rng_b)
        # Same samples (same seed, same effective support) -> identical
        # empirical sparsity; the learned histograms agree up to the single
        # trailing piece that absorbs the zero-mass padding.
        assert learned_padded.empirical.sparsity == learned_small.empirical.sparsity
        assert learned_small.error_to(small) == pytest.approx(
            learned_padded.error_to(padded), abs=1e-3
        )


class TestPolynomialPipeline:
    def test_poly_dataset_favors_polynomials(self):
        seed = 5
        values = make_poly_dataset(n=1000, seed=seed)
        from repro.datasets import underlying_poly

        # The clean signal for seed S is underlying_poly with rng seeded S
        # (make_poly_dataset draws the polynomial before the noise).
        clean = underlying_poly(n=1000, rng=np.random.default_rng(seed))
        hist = construct_histogram(values, 8, delta=1000.0)
        func = construct_piecewise_polynomial(values, 8, 3, delta=1000.0)
        assert func.l2_to_dense(clean) < hist.l2_to_dense(clean)


class TestHierarchyOnRealData:
    def test_dow_pareto_is_useful(self):
        values = make_dow_dataset(n=4096)
        hierarchy = construct_hierarchical_histogram(values)
        curve = hierarchy.pareto_curve()
        # The hierarchy spans from near-exact (level 0 is lossless up to
        # prefix-sum cancellation noise) to very coarse.
        assert curve[0][1] == pytest.approx(0.0, abs=1e-2)
        assert curve[-1][0] < 8
        assert curve[-1][1] > curve[len(curve) // 2][1]
