"""Tests for the closed-form LinearOracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LinearOracle,
    PolynomialOracle,
    SparseFunction,
    construct_general_histogram,
)

from helpers import sparse_functions


class TestAgainstGenericOracle:
    @given(sparse_functions(max_n=50), st.data())
    @settings(max_examples=50, deadline=None)
    def test_errors_match_polynomial_oracle(self, q, data):
        linear = LinearOracle(q)
        generic = PolynomialOracle(q, 1)
        a = data.draw(st.integers(min_value=0, max_value=q.n - 1))
        b = data.draw(st.integers(min_value=a, max_value=q.n - 1))
        assert linear.error_sq(a, b) == pytest.approx(
            generic.error_sq(a, b), abs=1e-7
        )

    @given(sparse_functions(max_n=50), st.data())
    @settings(max_examples=40, deadline=None)
    def test_fits_match_polynomial_oracle(self, q, data):
        linear = LinearOracle(q)
        generic = PolynomialOracle(q, 1)
        a = data.draw(st.integers(min_value=0, max_value=q.n - 1))
        b = data.draw(st.integers(min_value=a, max_value=q.n - 1))
        np.testing.assert_allclose(
            linear.fit(a, b).to_dense(), generic.fit(a, b).to_dense(), atol=1e-7
        )

    def test_batch_matches_scalar(self, sparse_signal):
        oracle = LinearOracle(sparse_signal)
        lefts = np.asarray([0, 5, 20])
        rights = np.asarray([4, 19, 49])
        batch = oracle.error_sq_batch(lefts, rights)
        for i in range(3):
            assert batch[i] == pytest.approx(
                oracle.error_sq(int(lefts[i]), int(rights[i]))
            )


class TestExactness:
    def test_exact_on_linear_data(self):
        dense = 3.0 * np.arange(30, dtype=np.float64) - 7.0
        oracle = LinearOracle(SparseFunction.from_dense(dense))
        assert oracle.error_sq(0, 29) == pytest.approx(0.0, abs=1e-8)
        fit = oracle.fit(5, 25)
        np.testing.assert_allclose(fit.to_dense(), dense[5:26], atol=1e-8)

    def test_singleton_interval(self, sparse_signal):
        oracle = LinearOracle(sparse_signal)
        assert oracle.error_sq(3, 3) == 0.0
        fit = oracle.fit(3, 3)
        assert fit.evaluate(3) == pytest.approx(1.0)

    def test_two_point_interval_exact(self):
        dense = np.asarray([0.0, 1.0, 5.0, 2.0])
        oracle = LinearOracle(SparseFunction.from_dense(dense))
        assert oracle.error_sq(1, 2) == pytest.approx(0.0, abs=1e-12)

    def test_empty_window(self):
        q = SparseFunction(20, [0], [3.0])
        oracle = LinearOracle(q)
        assert oracle.error_sq(5, 15) == pytest.approx(0.0, abs=1e-12)


class TestInMerging:
    def test_drives_general_merger(self, step_signal):
        """Same quality as the generic oracle (partitions can differ only
        through floating-point tie-breaks in the pair ranking)."""
        q = SparseFunction.from_dense(step_signal)
        fast = construct_general_histogram(q, 3, LinearOracle(q), delta=1.0)
        slow = construct_general_histogram(q, 3, PolynomialOracle(q, 1), delta=1.0)
        assert fast.num_pieces <= slow.num_pieces + 2
        fast_err = fast.function.l2_to_dense(step_signal)
        slow_err = slow.function.l2_to_dense(step_signal)
        assert fast_err == pytest.approx(slow_err, rel=0.05)

    def test_piecewise_linear_beats_flat_on_ramp(self):
        ramp = np.linspace(0.0, 10.0, 256)
        q = SparseFunction.from_dense(ramp)
        result = construct_general_histogram(q, 4, LinearOracle(q), delta=1.0)
        assert result.function.l2_to_dense(ramp) == pytest.approx(0.0, abs=1e-6)
