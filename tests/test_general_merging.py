"""Tests for the generalized merger (Theorem 4.1) and the Theorem 2.3
piecewise-polynomial construction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstantOracle,
    PolynomialOracle,
    SparseFunction,
    construct_general_histogram,
    construct_histogram_partition,
    construct_piecewise_polynomial,
    target_pieces,
)

from helpers import sparse_functions


class TestReducesToAlgorithm1:
    @given(sparse_functions(max_n=40), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_constant_oracle_matches_merging(self, q, k):
        """With the constant oracle, partitions equal Algorithm 1's."""
        general = construct_general_histogram(q, k, ConstantOracle(q), delta=1.0)
        plain = construct_histogram_partition(q, k, delta=1.0)
        assert general.partition == plain.partition

    def test_constant_oracle_values_match(self, step_signal):
        q = SparseFunction.from_dense(step_signal)
        general = construct_general_histogram(q, 3, ConstantOracle(q), delta=1.0)
        plain = construct_histogram_partition(q, 3, delta=1.0)
        np.testing.assert_allclose(
            general.function.to_dense(), plain.histogram.to_dense(), atol=1e-9
        )


class TestPieceBounds:
    @given(
        sparse_functions(max_n=40),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_theorem_4_1_piece_bound(self, q, k, degree):
        result = construct_general_histogram(
            q, k, PolynomialOracle(q, degree), delta=1.0, gamma=1.0
        )
        assert result.num_pieces <= target_pieces(k, 1.0, 1.0)

    def test_paper_parameterization(self, step_signal):
        func = construct_piecewise_polynomial(step_signal, 4, 1, delta=1000.0)
        assert func.num_pieces <= 9  # 2k + 1


class TestPolynomialQuality:
    def test_recovers_clean_piecewise_linear(self):
        """A noiseless 2-piece linear function is fit exactly."""
        x = np.arange(50, dtype=np.float64)
        clean = np.concatenate((2.0 * x[:25] + 1.0, -1.0 * x[:25] + 80.0))
        func = construct_piecewise_polynomial(clean, 2, 1, delta=1.0)
        assert func.l2_to_dense(clean) == pytest.approx(0.0, abs=1e-7)

    def test_recovers_clean_quadratic(self):
        x = np.arange(60, dtype=np.float64)
        clean = 0.05 * x * x - x + 3.0
        func = construct_piecewise_polynomial(clean, 1, 2, delta=1.0)
        assert func.l2_to_dense(clean) == pytest.approx(0.0, abs=1e-7)

    def test_degree_beats_histogram_on_smooth_data(self):
        """On a ramp, degree-1 pieces beat the same number of flat pieces."""
        ramp = np.linspace(0.0, 10.0, 200)
        flat = construct_piecewise_polynomial(ramp, 4, 0, delta=1.0)
        linear = construct_piecewise_polynomial(ramp, 4, 1, delta=1.0)
        assert linear.l2_to_dense(ramp) < flat.l2_to_dense(ramp) / 10.0

    def test_theorem_2_3_error_bound_vs_histogram_opt(self, step_signal):
        """Degree-d error is at most the degree-0 bound: the class is larger."""
        hist = construct_histogram_partition(step_signal, 3, delta=1.0)
        func = construct_piecewise_polynomial(step_signal, 3, 2, delta=1.0)
        assert (
            func.l2_to_dense(step_signal)
            <= hist.histogram.l2_to_dense(step_signal) * math.sqrt(2.0) + 1e-9
        )


class TestValidation:
    def test_rejects_foreign_oracle(self, step_signal, sparse_signal):
        oracle = ConstantOracle(sparse_signal)
        q = SparseFunction.from_dense(step_signal)
        with pytest.raises(ValueError, match="different input"):
            construct_general_histogram(q, 3, oracle)

    def test_invalid_k(self, sparse_signal):
        with pytest.raises(ValueError, match="k must be"):
            construct_general_histogram(sparse_signal, 0, ConstantOracle(sparse_signal))

    def test_invalid_delta(self, sparse_signal):
        with pytest.raises(ValueError, match="delta"):
            construct_general_histogram(
                sparse_signal, 2, ConstantOracle(sparse_signal), delta=0.0
            )

    def test_invalid_gamma(self, sparse_signal):
        with pytest.raises(ValueError, match="gamma"):
            construct_general_histogram(
                sparse_signal, 2, ConstantOracle(sparse_signal), gamma=0.0
            )

    def test_diagnostics(self, step_signal):
        q = SparseFunction.from_dense(step_signal)
        result = construct_general_histogram(q, 3, PolynomialOracle(q, 1), delta=1.0)
        assert result.rounds >= 1
        assert result.initial_intervals >= result.num_pieces
