"""Tests for the dual greedy baseline (repro.baselines.dual_greedy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PrefixSums,
    SparseFunction,
    dual_histogram,
    greedy_histogram_for_budget,
    v_optimal_histogram,
)

from helpers import dense_arrays, sparse_functions


class TestGreedySweep:
    def test_zero_budget_gives_exact_representation(self, step_signal):
        part = greedy_histogram_for_budget(step_signal, 0.0)
        # Every bucket must have zero flattening error; since the noisy
        # signal has all-distinct values, buckets are singletons.
        assert part.num_intervals == step_signal.size

    def test_infinite_budget_gives_one_bucket(self, step_signal):
        total = float(np.sum((step_signal - step_signal.mean()) ** 2))
        part = greedy_histogram_for_budget(step_signal, total + 1.0)
        assert part.num_intervals == 1

    def test_bucket_errors_respect_budget(self, step_signal):
        budget = 1.5
        part = greedy_histogram_for_budget(step_signal, budget)
        q = SparseFunction.from_dense(step_signal)
        ps = PrefixSums(q)
        for a, b in part:
            assert ps.interval_err(a, b) <= budget + 1e-9

    def test_piece_count_monotone_in_budget(self, step_signal):
        budgets = [0.1, 0.5, 2.0, 10.0, 100.0]
        counts = [
            greedy_histogram_for_budget(step_signal, b).num_intervals
            for b in budgets
        ]
        for earlier, later in zip(counts, counts[1:]):
            assert later <= earlier

    def test_methods_agree(self, step_signal):
        """The paper-faithful scan and the binary-search sweep coincide."""
        for budget in (0.25, 1.0, 5.0, 50.0):
            scan = greedy_histogram_for_budget(step_signal, budget, method="scan")
            search = greedy_histogram_for_budget(step_signal, budget, method="search")
            assert scan == search

    @given(dense_arrays(min_size=2, max_size=30), st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_methods_agree_property(self, values, budget):
        scan = greedy_histogram_for_budget(values, budget, method="scan")
        search = greedy_histogram_for_budget(values, budget, method="search")
        assert scan == search

    def test_unknown_method(self, step_signal):
        with pytest.raises(ValueError, match="unknown method"):
            greedy_histogram_for_budget(step_signal, 1.0, method="bogus")

    def test_max_pieces_early_exit(self, step_signal):
        tight = greedy_histogram_for_budget(step_signal, 0.01, max_pieces=3)
        assert tight is None
        loose = greedy_histogram_for_budget(step_signal, 1e9, max_pieces=3)
        assert loose is not None

    def test_max_pieces_early_exit_search(self, step_signal):
        tight = greedy_histogram_for_budget(
            step_signal, 0.01, max_pieces=3, method="search"
        )
        assert tight is None


class TestGreedyOptimality:
    """[JKM+98]: the greedy sweep is piece-optimal for its budget on the
    dual problem (no b-budget histogram uses fewer maximal buckets)."""

    @given(dense_arrays(min_size=3, max_size=14), st.floats(min_value=0.05, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_greedy_no_worse_than_brute_dual(self, values, budget):
        import itertools

        part = greedy_histogram_for_budget(values, budget)
        n = values.size

        def feasible(rights):
            lefts = [0] + [r + 1 for r in rights[:-1]]
            for a, b in zip(lefts, rights):
                window = values[a : b + 1]
                err = float(np.sum((window - window.mean()) ** 2))
                if err > budget + 1e-12:
                    return False
            return True

        best = n
        for pieces in range(1, part.num_intervals + 1):
            for cuts in itertools.combinations(range(n - 1), pieces - 1):
                rights = list(cuts) + [n - 1]
                if feasible(rights):
                    best = min(best, pieces)
                    break
            if best < n:
                break
        assert part.num_intervals == best


class TestDualPrimal:
    def test_respects_k(self, step_signal):
        result = dual_histogram(step_signal, 3)
        assert result.num_pieces <= 3

    def test_error_within_constant_of_opt(self, step_signal):
        opt = v_optimal_histogram(step_signal, 3).error
        result = dual_histogram(step_signal, 3)
        # The paper observes ratios up to ~2 in practice.
        assert result.error <= 3.0 * opt + 1e-9

    def test_zero_error_input(self):
        clean = np.repeat([2.0, 7.0], 20)
        result = dual_histogram(clean, 2)
        assert result.error == pytest.approx(0.0, abs=1e-12)
        assert result.num_pieces == 2

    def test_search_method_matches_scan_quality(self, step_signal):
        scan = dual_histogram(step_signal, 3, method="scan")
        search = dual_histogram(step_signal, 3, method="search")
        assert scan.error == pytest.approx(search.error, abs=1e-9)

    def test_search_steps_reported(self, step_signal):
        result = dual_histogram(step_signal, 3)
        assert 1 <= result.search_steps <= 64

    def test_invalid_k(self, step_signal):
        with pytest.raises(ValueError, match="k must be"):
            dual_histogram(step_signal, 0)

    def test_tighter_tolerance_no_worse(self, step_signal):
        loose = dual_histogram(step_signal, 4, tolerance=1e-1)
        tight = dual_histogram(step_signal, 4, tolerance=1e-6)
        assert tight.error <= loose.error + 1e-9

    @given(sparse_functions(max_n=25), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_piece_bound_property(self, q, k):
        result = dual_histogram(q, k)
        assert result.num_pieces <= k
