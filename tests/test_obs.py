"""Tests for the observability layer: metrics, tracing, logging, exposition.

The load-bearing properties:

* Latency histograms are *mergeable summaries*: per-shard histograms
  ``merge()`` into exactly the histogram a single observer of the union
  stream would hold (bucket counts, sums, maxima, and quantile readouts
  all agree) — the same discipline as the paper's sketches.
* Instrumentation is exact under concurrency: a threaded query storm
  through the async front end loses no counter increments, and the
  per-shard series sum to the front-end totals.
* Per-entry series follow the entry lifecycle: ``SynopsisStore.remove``
  drops the engine's per-entry stats and registry series (the leak
  regression), and re-registering starts clean.
"""

from __future__ import annotations

import io
import json
import logging
import threading

import numpy as np
import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    SlowQueryLog,
    TraceContext,
    configure_json_logging,
    current_trace,
    get_default_registry,
    get_logger,
    render_json,
    render_prometheus,
    set_default_registry,
    span,
    timer,
    trace,
)
from repro.serve.builders import build_synopsis
from repro.serve.cli import metrics_main, serve_main
from repro.serve.engine import QueryEngine
from repro.serve.frontend import AsyncServingFrontend, QueryRequest
from repro.serve.planner import BuildBudget, plan_build
from repro.serve.router import ShardRouter
from repro.serve.store import SynopsisStore


def _values(n: int = 4096, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(1.0, 0.5, n)) + 1e-6


# ---------------------------------------------------------------------- #
# Instruments
# ---------------------------------------------------------------------- #


class TestCounter:
    def test_inc_and_value(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_threaded_increments_exact(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(10_000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3.5)
        g.inc(1.5)
        g.dec(2.0)
        assert g.value == pytest.approx(3.0)


class TestLatencyHistogram:
    def test_bucket_placement(self):
        h = LatencyHistogram(exp_range=(-4, 4))
        # Bucket 0 absorbs zero and everything below 2**(lo+1); values at
        # or above 2**hi clamp into the last bucket.
        h.observe(0.0)
        h.observe(0.1)  # [2**-4, 2**-3) -> bucket 0
        h.observe(0.2)  # [2**-3, 2**-2) -> bucket 1
        h.observe(1.0)  # [2**0, 2**1)   -> bucket 4
        h.observe(100.0)  # clamped
        counts = h.bucket_counts()
        assert counts[0] == 2
        assert h._bucket_of(0.2) == 1 and counts[1] == 1
        assert h._bucket_of(1.0) == 4 and counts[4] == 1
        assert counts[-1] == 1
        assert h.count == 5
        assert h.max == 100.0

    def test_quantile_is_conservative_upper_bound(self):
        h = LatencyHistogram()
        values = [1e-4, 2e-4, 3e-4, 1e-3, 1e-2]
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99, 1.0):
            estimate = h.quantile(q)
            true_q = values[min(len(values) - 1, int(np.ceil(q * 5)) - 1)]
            assert estimate >= true_q  # never underestimates
            assert estimate <= 2.0 * true_q  # within the log-bucket factor
        assert h.quantile(1.0) == h.max  # clamped to the observed max

    def test_empty_quantile_and_mean(self):
        h = LatencyHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_quantile_level_validated(self):
        with pytest.raises(ValueError, match="quantile level"):
            LatencyHistogram().quantile(1.5)

    def test_merge_equals_union_stream(self):
        """The acceptance property: merged per-shard histograms are
        bitwise the summary of the union stream."""
        rng = np.random.default_rng(3)
        values = rng.lognormal(-9.0, 2.0, 3000)  # microsecond..second range
        union = LatencyHistogram()
        for v in values:
            union.observe(float(v))
        shards = [LatencyHistogram() for _ in range(3)]
        for part, h in zip(np.array_split(values, 3), shards):
            for v in part:
                h.observe(float(v))
        merged = shards[0].merge(shards[1])
        merged.merge_from(shards[2])
        assert merged.count == union.count == values.size
        assert merged.sum == pytest.approx(union.sum)
        assert merged.max == union.max
        assert merged.bucket_counts() == union.bucket_counts()
        for q in (0.5, 0.9, 0.95, 0.99):
            assert merged.quantile(q) == union.quantile(q)

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bucket layouts"):
            LatencyHistogram(exp_range=(-4, 4)).merge_from(LatencyHistogram())

    def test_threaded_observes_exact(self):
        h = LatencyHistogram()

        def work():
            for i in range(5_000):
                h.observe(1e-4 * (1 + i % 7))

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 30_000
        assert sum(h.bucket_counts()) == 30_000


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_get_or_create_shares_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", shard="0")
        b = reg.counter("x_total", shard="0")
        assert a is b
        assert reg.counter("x_total", shard="1") is not a
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x_total")

    def test_drop_by_label_subset(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", entry="a", shard="0").inc()
        reg.counter("hits_total", entry="b", shard="0").inc()
        reg.counter("other_total", entry="a").inc()
        assert reg.drop(entry="a") == 2
        assert reg.get("hits_total", entry="a", shard="0") is None
        assert reg.get("hits_total", entry="b", shard="0") is not None

    def test_drop_requires_labels(self):
        with pytest.raises(ValueError, match="at least one label"):
            MetricsRegistry().drop()

    def test_merge_from_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total", "how many").inc(2)
        b.counter("n_total").inc(3)
        b.histogram("lat_seconds").observe(0.001)
        a.merge_from(b)
        assert a.get("n_total").value == 5
        assert a.get("lat_seconds").count == 1
        assert a.help_text("n_total") == "how many"  # help survives merge

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        c = reg.counter("x_total")
        c.inc()
        h = reg.histogram("y_seconds")
        h.observe(1.0)
        assert c.value == 0 and h.count == 0
        assert reg.collect() == []
        assert c is NULL_REGISTRY.counter("anything")  # one shared no-op

    def test_timer_feeds_histogram(self):
        h = LatencyHistogram()
        with timer(h) as t:
            pass
        assert h.count == 1
        assert t.seconds >= 0.0 and t.ms == pytest.approx(t.seconds * 1e3)


# ---------------------------------------------------------------------- #
# Tracing
# ---------------------------------------------------------------------- #


class TestTracing:
    def test_spans_recorded_with_tags(self):
        ctx = TraceContext("req")
        with ctx.span("route", shards=2):
            pass
        with ctx.span("evaluate"):
            pass
        names = [s.name for s in ctx.spans()]
        assert names == ["route", "evaluate"]
        assert ctx.spans()[0].tags == {"shards": 2}
        payload = ctx.as_dict()
        assert payload["trace_id"] == ctx.trace_id
        assert len(payload["spans"]) == 2

    def test_trace_ids_unique(self):
        assert TraceContext().trace_id != TraceContext().trace_id

    def test_contextvar_binding(self):
        assert current_trace() is None
        with trace("outer") as ctx:
            assert current_trace() is ctx
            with span("inner"):
                pass
        assert current_trace() is None
        assert [s.name for s in ctx.spans()] == ["inner"]

    def test_module_span_is_noop_without_trace(self):
        with span("orphan") as record:
            assert record is None

    def test_bound_rebinds_in_worker_thread(self):
        ctx = TraceContext()
        seen = []

        def worker():
            seen.append(current_trace())  # pools don't inherit context
            with ctx.bound():
                seen.append(current_trace())

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen == [None, ctx]


# ---------------------------------------------------------------------- #
# JSON logging and the slow-query log
# ---------------------------------------------------------------------- #


class TestJsonLogging:
    def test_one_json_object_per_line_with_extras(self):
        stream = io.StringIO()
        configure_json_logging(stream)
        get_logger("test").info("hello", extra={"shard": 3})
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "hello"
        assert record["logger"] == "repro.test"
        assert record["level"] == "info"
        assert record["shard"] == 3

    def test_trace_id_attached_when_bound(self):
        stream = io.StringIO()
        configure_json_logging(stream)
        with trace() as ctx:
            get_logger("test").info("traced")
        assert json.loads(stream.getvalue())["trace_id"] == ctx.trace_id

    def test_reconfigure_does_not_double_log(self):
        first, second = io.StringIO(), io.StringIO()
        configure_json_logging(first)
        root = configure_json_logging(second)
        get_logger("test").info("once")
        assert first.getvalue() == ""
        assert len(second.getvalue().strip().splitlines()) == 1
        assert sum(
            getattr(h, "_repro_json_handler", False) for h in root.handlers
        ) == 1

    def test_slow_query_log_threshold_and_bound(self):
        log = SlowQueryLog(
            threshold_seconds=0.01, maxlen=3, logger=logging.getLogger("t")
        )
        assert not log.record("range_sum", "a", 0.001)
        assert len(log) == 0
        for i in range(5):
            assert log.record("range_sum", f"q{i}", 0.02 + i * 0.01)
        entries = log.entries()
        assert len(entries) == 3  # ring bound
        assert [e["name"] for e in entries] == ["q2", "q3", "q4"]
        log.clear()
        assert len(log) == 0

    def test_slow_query_log_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match=">= 0"):
            SlowQueryLog(threshold_seconds=-1.0)


# ---------------------------------------------------------------------- #
# Exposition
# ---------------------------------------------------------------------- #


class TestExport:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", shard="0").inc(4)
        reg.gauge("depth", "queue depth").set(2.5)
        h = reg.histogram("lat_seconds", "latency")
        for v in (1e-4, 2e-4, 5e-2):
            h.observe(v)
        return reg

    def test_prometheus_text_format(self):
        text = render_prometheus(self._registry())
        assert '# HELP req_total requests' in text
        assert '# TYPE req_total counter' in text
        assert 'req_total{shard="0"} 4' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "process_uptime_seconds" in text

    def test_prometheus_buckets_cumulative(self):
        text = render_prometheus(self._registry())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", entry='we"ird\nname').inc()
        text = render_prometheus(reg)
        assert 'entry="we\\"ird\\nname"' in text

    def test_json_document(self):
        doc = render_json(self._registry())
        assert doc["uptime_seconds"] >= 0.0
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["req_total"]["value"] == 4
        hist = by_name["lat_seconds"]
        assert hist["count"] == 3
        assert {"p50", "p95", "p99"} <= set(hist)
        # The document round-trips through json (no numpy leakage).
        json.loads(json.dumps(doc))


# ---------------------------------------------------------------------- #
# Engine + store instrumentation
# ---------------------------------------------------------------------- #


class TestEngineInstrumentation:
    def test_cache_info_is_a_registry_view(self):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        engine = QueryEngine(store)
        engine.range_sum("a", 0, 10)
        engine.range_sum("a", 0, 10)
        info = engine.cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        assert engine.registry.get("engine_cache_hits_total").value == 1
        assert (
            engine.registry.get("engine_entry_cache_misses_total", entry="a").value
            == 1
        )
        assert info["entries"]["a"] == {"hits": 1, "misses": 1, "evictions": 0}

    def test_query_latency_series_per_kind(self):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        engine = QueryEngine(store)
        engine.range_sum("a", 0, 10)
        engine.quantile("a", 0.5)
        engine.quantile("a", 0.9)
        for kind, expected in (("range_sum", 1), ("quantile", 2), ("cdf", 0)):
            h = engine.registry.get("engine_query_seconds", kind=kind)
            c = engine.registry.get("engine_queries_total", kind=kind)
            assert h.count == expected and c.value == expected
        assert engine.registry.get("engine_query_seconds", kind="quantile").sum > 0

    def test_failing_query_still_counted(self):
        store = SynopsisStore()
        store.register("a", _values(256), family="merging", k=8)
        engine = QueryEngine(store)
        with pytest.raises(ValueError):
            engine.range_sum("a", 0, 10_000)  # out of range
        assert engine.registry.get("engine_queries_total", kind="range_sum").value == 1

    def test_remove_drops_entry_stats_and_series(self):
        """Regression: per-entry CacheStats used to survive remove()."""
        store = SynopsisStore()
        store.register("doomed", _values(), family="merging", k=8)
        store.register("kept", _values(seed=1), family="merging", k=8)
        engine = QueryEngine(store)
        engine.range_sum("doomed", 0, 10)
        engine.range_sum("kept", 0, 10)
        assert "doomed" in engine.cache_info()["entries"]

        store.remove("doomed")
        info = engine.cache_info()
        assert "doomed" not in info["entries"]  # stats map no longer leaks
        assert "kept" in info["entries"]
        assert engine.registry.get(
            "engine_entry_cache_hits_total", entry="doomed"
        ) is None  # registry series dropped too
        assert engine.entry_cache_info("doomed") == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        # Cached tables for the removed name are gone as well.
        assert info["size"] == 1

    def test_remove_then_reregister_starts_clean(self):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        engine = QueryEngine(store)
        for _ in range(5):
            engine.range_sum("a", 0, 10)
        store.remove("a")
        store.register("a", _values(seed=2), family="merging", k=8)
        engine.range_sum("a", 0, 10)
        assert engine.entry_cache_info("a") == {
            "hits": 0,
            "misses": 1,
            "evictions": 0,
        }

    def test_engines_have_isolated_registries_by_default(self):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        e1, e2 = QueryEngine(store), QueryEngine(store)
        e1.range_sum("a", 0, 10)
        assert e1.registry.get("engine_queries_total", kind="range_sum").value == 1
        assert e2.registry.get("engine_queries_total", kind="range_sum").value == 0


class TestStoreInstrumentation:
    def test_register_and_version_bump_metrics(self):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        store.register("a", _values(seed=1), family="merging", k=8)
        assert store.registry.get("store_register_seconds").count == 2
        assert store.registry.get("store_version_bumps_total").value == 2

    def test_refresh_metrics(self):
        from repro.sampling.streaming import StreamingHistogramLearner

        rng = np.random.default_rng(0)
        learner = StreamingHistogramLearner(n=256, k=8)
        learner.extend(rng.integers(0, 256, 2000))
        store = SynopsisStore()
        store.register_stream("s", learner)
        store.refresh("s")
        assert store.registry.get("store_refresh_seconds").count == 1
        assert store.registry.get("store_version_bumps_total").value == 2

    def test_hydrate_timing_recorded_on_lazy_load(self, tmp_path):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        store.save(tmp_path / "st")
        loaded = SynopsisStore.load(tmp_path / "st", lazy=True)
        assert loaded.registry.get("store_hydrate_seconds").count == 0
        loaded.snapshot("a")  # first access hydrates
        assert loaded.registry.get("store_hydrate_seconds").count == 1
        loaded.snapshot("a")  # idempotent: no second hydration
        assert loaded.registry.get("store_hydrate_seconds").count == 1

    def test_build_and_plan_metrics_on_default_registry(self):
        previous = set_default_registry(MetricsRegistry())
        try:
            reg = get_default_registry()
            build_synopsis(_values(), "merging", 8)
            assert reg.get("builds_total", family="merging").value == 1
            assert reg.get("build_seconds", family="merging").count == 1
            plan_build(_values(), BuildBudget(max_bytes=4096))
            assert reg.get("plans_total").value == 1
            assert reg.get("plan_seconds").count == 1
            assert reg.get("plan_candidates_built_total").value >= 1
        finally:
            set_default_registry(previous)


# ---------------------------------------------------------------------- #
# Router + front end: shard labels, merge totals, the threaded storm
# ---------------------------------------------------------------------- #


def _sharded_frontend(num_shards: int = 3, entries: int = 6):
    router = ShardRouter(num_shards=num_shards)
    for i in range(entries):
        router.register(f"e{i}", _values(2048, seed=i), family="merging", k=8)
    return router, AsyncServingFrontend(router)


class TestShardedObservability:
    def test_shard_labeled_series_in_one_registry(self):
        router, frontend = _sharded_frontend()
        frontend.serve([QueryRequest("range_sum", "e0", (0, 100))])
        shard = str(router.shard_map.shard_of("e0"))
        assert (
            router.registry.get(
                "engine_queries_total", kind="range_sum", shard=shard
            ).value
            == 1
        )
        assert frontend.registry is router.registry
        frontend.close()

    def test_trace_spans_cover_the_pipeline(self):
        router, frontend = _sharded_frontend()
        frontend.serve(
            [QueryRequest("range_sum", f"e{i}", (0, 100)) for i in range(6)]
        )
        names = [s.name for s in frontend.last_trace.spans()]
        assert names[0] == "route" and names[-1] == "reassemble"
        assert "coalesce" in names and "evaluate" in names
        frontend.close()

    def test_reshard_counters(self):
        router, _ = _sharded_frontend(num_shards=2, entries=4)
        # Growing preserves every sticky assignment, so no entry migrates.
        new = router.reshard(4)
        assert router.registry.get("router_reshards_total").value == 1
        assert router.registry.get("router_entries_migrated_total").value == 0
        assert new.registry is router.registry
        # Shrinking to one shard moves everything that wasn't already there.
        expected = sum(1 for n in new.names() if new.shard_map.shard_of(n) != 0)
        new.reshard(1)
        assert router.registry.get("router_reshards_total").value == 2
        assert (
            router.registry.get("router_entries_migrated_total").value
            == expected
        )

    def test_threaded_storm_loses_no_increments(self):
        """Satellite 3 + acceptance: exact counters under concurrency and
        per-shard histogram totals that merge into the front-end count."""
        router, frontend = _sharded_frontend(num_shards=3, entries=6)
        threads, batches, per_batch = 6, 5, 24
        requests = [
            QueryRequest("range_sum", f"e{i % 6}", (0, 100))
            for i in range(per_batch)
        ]
        errors = []

        def storm():
            try:
                for _ in range(batches):
                    results = frontend.serve(requests)
                    assert all(r.ok for r in results)
                    assert len(results) == per_batch
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        workers = [threading.Thread(target=storm) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors

        total = threads * batches * per_batch
        reg = router.registry
        assert reg.get("frontend_requests_total").value == total
        assert reg.get("frontend_batches_total").value == threads * batches

        # Per-shard request counters are mergeable: they sum to the total.
        shard_counts = [
            m.value
            for name, labels, m in reg.collect()
            if name == "frontend_shard_requests_total"
        ]
        assert sum(shard_counts) == total

        # Per-shard latency histograms merge() into a fleet total whose
        # count matches the end-to-end number of shard jobs, and whose
        # engine-side observations nest inside the shard-side timings.
        shard_hists = [
            m
            for name, labels, m in reg.collect()
            if name == "frontend_shard_seconds"
        ]
        merged_shard = LatencyHistogram()
        for h in shard_hists:
            merged_shard.merge_from(h)
        assert merged_shard.count == sum(h.count for h in shard_hists)
        # every batch touched every shard (6 entries over 3 shards)
        assert merged_shard.count == threads * batches * 3

        engine_hists = [
            m
            for name, labels, m in reg.collect()
            if name == "engine_query_seconds" and labels["kind"] == "range_sum"
        ]
        merged_engine = LatencyHistogram()
        for h in engine_hists:
            merged_engine.merge_from(h)
        # Coalescing merges same-(name, kind) requests: per shard job one
        # engine call per distinct name, 2 names per shard.
        assert merged_engine.count == threads * batches * 3 * 2
        assert reg.get("frontend_coalesced_requests_total").value == total
        # Engine evaluation intervals nest inside their shard job's
        # interval (same thread), so the merged sums must order.
        assert merged_engine.sum <= merged_shard.sum
        frontend.close()

    def test_batch_size_histogram_not_clamped(self):
        router, frontend = _sharded_frontend(num_shards=1, entries=1)
        frontend.serve(
            [QueryRequest("range_sum", "e0", (0, 100)) for _ in range(500)]
        )
        h = router.registry.get("frontend_batch_size")
        assert h.max == 500.0
        assert h.quantile(1.0) >= 500.0  # batch sizes use exp_range=(0, 20)
        frontend.close()

    def test_request_errors_counted(self):
        router, frontend = _sharded_frontend(num_shards=1, entries=1)
        results = frontend.serve(
            [
                QueryRequest("range_sum", "e0", (0, 100)),
                QueryRequest("range_sum", "missing", (0, 100)),
            ]
        )
        assert [r.ok for r in results] == [True, False]
        assert router.registry.get("frontend_request_errors_total").value == 1
        frontend.close()

    def test_slow_query_log_captures_slow_batches(self):
        router, frontend = _sharded_frontend(num_shards=1, entries=1)
        frontend.slow_log = SlowQueryLog(
            threshold_seconds=0.0, logger=logging.getLogger("t")
        )
        frontend.serve([QueryRequest("range_sum", "e0", (0, 100))])
        entries = frontend.slow_log.entries()
        assert len(entries) == 1
        assert entries[0]["kind"] == "query_batch"
        assert entries[0]["trace_id"] == frontend.last_trace.trace_id
        frontend.close()


# ---------------------------------------------------------------------- #
# CLI surfaces
# ---------------------------------------------------------------------- #


class TestMetricsCli:
    def _saved_store(self, tmp_path):
        store = SynopsisStore()
        store.register("a", _values(), family="merging", k=8)
        target = tmp_path / "store"
        store.save(target)
        return target

    def test_metrics_main_text(self, tmp_path, capsys):
        assert metrics_main([str(self._saved_store(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "# TYPE engine_query_seconds histogram" in out
        assert "engine_queries_total" in out
        assert "process_uptime_seconds" in out

    def test_metrics_main_json(self, tmp_path):
        buffer = io.StringIO()
        assert (
            metrics_main(
                [str(self._saved_store(tmp_path)), "--format", "json"],
                stdout=buffer,
            )
            == 0
        )
        doc = json.loads(buffer.getvalue())
        names = {m["name"] for m in doc["metrics"]}
        assert "engine_query_seconds" in names
        assert "store_hydrate_seconds" in names  # lazy load was probed

    def test_repl_metrics_command(self):
        out = io.StringIO()
        serve_main(
            ["--dataset", "steps", "--n", "256", "--families", "merging"],
            stdin=io.StringIO("range merging 0 100\nmetrics\nmetrics json\nquit\n"),
            stdout=out,
        )
        text = out.getvalue()
        assert "engine_queries_total" in text
        assert '"p99"' in text  # json form too
        assert "process_uptime_seconds" in text

    def test_summary_line_shows_build_elapsed(self):
        out = io.StringIO()
        serve_main(
            ["--dataset", "steps", "--n", "256", "--families", "merging"],
            stdin=io.StringIO("summary\nquit\n"),
            stdout=out,
        )
        assert "build=" in out.getvalue()
