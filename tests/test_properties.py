"""Cross-module property tests: global invariants of the whole library.

These complement the per-module tests with relationships that span several
components — the kind of invariants a downstream user implicitly relies on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Partition,
    PrefixSums,
    SparseFunction,
    brute_force_optimal,
    construct_fast_histogram,
    construct_hierarchical_histogram,
    construct_histogram,
    construct_piecewise_polynomial,
    dual_histogram,
    flatten,
    gks_histogram,
    v_optimal_histogram,
)

from helpers import dense_arrays, sparse_functions


class TestMassPreservation:
    """Flattening preserves total mass — the reason learned histograms are
    automatically probability distributions."""

    @given(sparse_functions(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_merging_preserves_mass(self, q, k):
        hist = construct_histogram(q, k, delta=1.0)
        assert hist.total_mass() == pytest.approx(q.total_mass(), abs=1e-8)

    @given(sparse_functions())
    @settings(max_examples=30, deadline=None)
    def test_hierarchy_preserves_mass_at_every_level(self, q):
        result = construct_hierarchical_histogram(q)
        for j in range(result.num_levels):
            hist = result.histogram_at_level(j)
            assert hist.total_mass() == pytest.approx(q.total_mass(), abs=1e-8)

    @given(sparse_functions(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_polynomial_merger_preserves_mass(self, q, k):
        func = construct_piecewise_polynomial(q, k, 1, delta=1.0)
        assert func.total_mass() == pytest.approx(q.total_mass(), abs=1e-7)

    @given(sparse_functions(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_exact_dp_preserves_mass(self, q, k):
        result = v_optimal_histogram(q, k)
        assert result.histogram.total_mass() == pytest.approx(
            q.total_mass(), abs=1e-8
        )


class TestOptimalityChain:
    """Relationships between the algorithms' achieved errors."""

    @given(dense_arrays(min_size=4, max_size=16), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_nobody_beats_brute_force_at_equal_pieces(self, values, k):
        opt = brute_force_optimal(values, k)
        dual = dual_histogram(values, k)
        gks = gks_histogram(values, k, delta=0.5)
        assert dual.error >= opt.error - 1e-7
        assert gks.error >= opt.error - 1e-7

    @given(dense_arrays(min_size=4, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_opt_k_is_monotone_in_k(self, values):
        errors = [
            brute_force_optimal(values, k).error for k in range(1, min(5, values.size))
        ]
        for a, b in zip(errors, errors[1:]):
            assert b <= a + 1e-9

    @given(dense_arrays(min_size=6, max_size=16), st.integers(min_value=1, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_more_pieces_never_hurt_merging(self, values, k):
        small = construct_histogram(values, k, delta=1.0)
        large = construct_histogram(values, 2 * k, delta=1.0)
        assert large.l2_to_dense(values) <= small.l2_to_dense(values) + 1e-7

    @given(dense_arrays(min_size=4, max_size=16), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_richer_class_never_hurts(self, values, degree):
        """Degree-(d+1) piecewise fits are at least as good as degree-d."""
        lower = construct_piecewise_polynomial(values, 2, degree, delta=1.0)
        higher = construct_piecewise_polynomial(values, 2, degree + 1, delta=1.0)
        if lower.partition == higher.partition:
            assert higher.l2_to_dense(values) <= lower.l2_to_dense(values) + 1e-7


class TestScaleInvariance:
    """Scaling the input scales every algorithm's output linearly."""

    @given(
        sparse_functions(max_n=30),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([0.5, 2.0, 4.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_merging_is_scale_equivariant(self, q, k, factor):
        """Scaling by powers of two is exact in floating point, so the pair
        rankings — and hence the partition — are preserved and the error
        scales linearly.  (For general factors rounding can flip near-ties
        in the pair ranking, changing the partition; only the *guarantee*
        is scale-invariant then.)"""
        base = construct_histogram(q, k, delta=1.0)
        scaled = construct_histogram(q.scaled(factor), k, delta=1.0)
        assert scaled.partition == base.partition
        assert scaled.l2_to_sparse(q.scaled(factor)) == pytest.approx(
            factor * base.l2_to_sparse(q), abs=1e-6, rel=1e-6
        )

    @given(dense_arrays(min_size=3, max_size=14), st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_opt_k_is_scale_equivariant(self, values, factor):
        base = brute_force_optimal(values, 2).error
        scaled = brute_force_optimal(values * factor, 2).error
        # abs tolerance covers near-zero optima, where both sides are
        # dominated by prefix-sum cancellation noise.
        assert scaled == pytest.approx(factor * base, abs=1e-6, rel=1e-6)

    @given(sparse_functions(max_n=30))
    @settings(max_examples=30, deadline=None)
    def test_shift_reduces_to_constant_fit(self, q):
        """Adding a constant to a dense signal leaves flattening errors
        unchanged (variance is shift-invariant)."""
        dense = q.to_dense()
        shifted = SparseFunction.from_dense(dense + 5.0)
        part = Partition.from_boundaries(q.n, [q.n // 2])
        base = flatten(q, part).l2_sq_to_sparse(q)
        moved = flatten(shifted, part).l2_sq_to_sparse(shifted)
        assert moved == pytest.approx(base, abs=1e-6)


class TestPartitionRefinementError:
    @given(sparse_functions(max_n=40))
    @settings(max_examples=30, deadline=None)
    def test_refining_a_partition_never_increases_error(self, q):
        ps = PrefixSums(q)
        coarse = Partition.from_boundaries(q.n, [q.n // 2])
        fine = Partition.from_boundaries(q.n, [q.n // 4, q.n // 2, (3 * q.n) // 4])
        coarse_err = float(np.sum(ps.interval_err(coarse.lefts, coarse.rights)))
        fine_err = float(np.sum(ps.interval_err(fine.lefts, fine.rights)))
        assert fine_err <= coarse_err + 1e-9

    @given(sparse_functions(max_n=40), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_fast_and_plain_merging_comparable(self, q, k):
        plain = construct_histogram(q, k, delta=1.0).l2_to_sparse(q)
        fast = construct_fast_histogram(q, k, delta=1.0).l2_to_sparse(q)
        opt = brute_force_optimal(q.to_dense(), k).error if q.n <= 20 else None
        if opt is not None:
            assert fast <= 3.0 * opt + 1e-7
            assert plain <= math.sqrt(2.0) * opt + 1e-7
