"""Tests for the empirical-distribution stage (repro.sampling.empirical)."""

import numpy as np
import pytest

from repro import DiscreteDistribution, draw_empirical, empirical_from_samples


class TestEmpiricalFromSamples:
    def test_counts(self):
        p_hat = empirical_from_samples(np.asarray([1, 1, 3, 1]), n=5)
        assert p_hat(1) == pytest.approx(0.75)
        assert p_hat(3) == pytest.approx(0.25)
        assert p_hat(0) == 0.0

    def test_mass_is_one(self, rng):
        samples = rng.integers(0, 50, size=333)
        p_hat = empirical_from_samples(samples, n=50)
        assert p_hat.total_mass() == pytest.approx(1.0)

    def test_sparsity_bounded_by_m_and_n(self, rng):
        samples = rng.integers(0, 1000, size=64)
        p_hat = empirical_from_samples(samples, n=1000)
        assert p_hat.sparsity <= 64

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            empirical_from_samples(np.asarray([], dtype=np.int64), n=5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, n\)"):
            empirical_from_samples(np.asarray([5]), n=5)
        with pytest.raises(ValueError, match=r"\[0, n\)"):
            empirical_from_samples(np.asarray([-1]), n=5)

    def test_order_irrelevant(self, rng):
        samples = rng.integers(0, 20, size=100)
        a = empirical_from_samples(samples, n=20)
        b = empirical_from_samples(np.sort(samples), n=20)
        assert a.allclose(b)


class TestDrawEmpirical:
    def test_basic(self, rng):
        p = DiscreteDistribution.uniform(10)
        p_hat = draw_empirical(p, 500, rng)
        assert p_hat.n == 10
        assert p_hat.total_mass() == pytest.approx(1.0)

    def test_rejects_zero_samples(self, rng):
        p = DiscreteDistribution.uniform(10)
        with pytest.raises(ValueError, match="at least one"):
            draw_empirical(p, 0, rng)

    def test_lemma_3_1_concentration(self, rng):
        """E||p_hat_m - p||_2 < 1/sqrt(m) (Lemma 3.1 proof).

        The Monte-Carlo mean sits just below the envelope; allow 3% noise.
        """
        p = DiscreteDistribution.from_nonnegative(
            np.random.default_rng(0).random(200) + 0.1
        )
        m = 4000
        errors = [p.l2_to(draw_empirical(p, m, rng)) for _ in range(40)]
        assert float(np.mean(errors)) <= 1.03 / np.sqrt(m)

    def test_error_decreases_with_m(self, rng):
        p = DiscreteDistribution.from_nonnegative(
            np.random.default_rng(1).random(100) + 0.1
        )
        small = np.mean([p.l2_to(draw_empirical(p, 200, rng)) for _ in range(10)])
        large = np.mean([p.l2_to(draw_empirical(p, 20000, rng)) for _ in range(10)])
        assert large < small / 2.0
