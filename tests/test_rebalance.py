"""Tests for skew-aware placement policy (repro.serve.loadstats).

Covers the :class:`HotnessTracker` decay math against an injected clock
(fold absorption, half-life decay, steady-state QPS recovery, counter
resets clamping to zero, frontend-vs-engine max folding), the
:class:`Rebalancer` threshold-plus-hysteresis policy over a live
:class:`ShardRouter` (migrate off crowded shards, replicate read-hot
entries, shed replicas on cooldown), and the CLI surface (the serve
REPL's ``rebalance`` command, ``metrics --top``, flag validation).
"""

import io
import math

import numpy as np
import pytest

from repro import HotnessTracker, Rebalancer, ShardRouter
from repro.__main__ import main
from repro.obs.metrics import MetricsRegistry
from repro.serve.cli import metrics_main, serve_main

_LN2 = math.log(2.0)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_tracker(half_life_s=10.0):
    clock = FakeClock()
    return HotnessTracker(half_life_s=half_life_s, clock=clock), clock


# --------------------------------------------------------------------- #
# HotnessTracker
# --------------------------------------------------------------------- #


class TestHotnessTracker:
    def test_half_life_must_be_positive(self):
        with pytest.raises(ValueError, match="half_life"):
            HotnessTracker(half_life_s=0.0)

    def test_fold_absorbs_engine_counters(self):
        tracker, _clock = make_tracker(half_life_s=10.0)
        registry = MetricsRegistry()
        registry.counter(
            "engine_entry_cache_misses_total", "m", entry="a"
        ).inc(100)
        tracker.fold(registry)
        assert tracker.qps("a") == pytest.approx(100 * _LN2 / 10.0)
        # A second fold with no new traffic absorbs nothing.
        before = tracker.qps("a")
        tracker.fold(registry)
        assert tracker.qps("a") == pytest.approx(before)

    def test_decay_halves_per_half_life(self):
        tracker, clock = make_tracker(half_life_s=10.0)
        tracker.observe("a", 64)
        q0 = tracker.qps("a")
        clock.advance(10.0)
        assert tracker.qps("a") == pytest.approx(q0 / 2)
        clock.advance(20.0)  # two more half-lives
        assert tracker.qps("a") == pytest.approx(q0 / 8)

    def test_steady_state_recovers_arrival_rate(self):
        # Feeding r queries/sec for many half-lives, qps() converges to
        # r (up to discrete-sampling bias, which shrinks with the fold
        # interval — hence the fine 0.25 s ticks).
        tracker, clock = make_tracker(half_life_s=10.0)
        rate = 10.0
        for _ in range(400):
            clock.advance(0.25)
            tracker.observe("a", rate * 0.25)
        assert tracker.qps("a") == pytest.approx(rate, rel=0.05)

    def test_cooled_entries_are_forgotten(self):
        tracker, clock = make_tracker(half_life_s=1.0)
        tracker.observe("a", 1.0)
        clock.advance(60.0)  # sixty half-lives: weight rounds to nothing
        assert tracker.qps("a") == 0.0
        assert tracker.top(10) == []

    def test_counter_reset_clamps_to_zero(self):
        # Migration drops the source shard's per-entry series, so the
        # cumulative total can shrink between folds.  The negative delta
        # must clamp, not subtract.
        tracker, _clock = make_tracker(half_life_s=10.0)
        registry = MetricsRegistry()
        registry.counter(
            "engine_entry_cache_misses_total", "m", entry="a", shard="0"
        ).inc(100)
        tracker.fold(registry)
        before = tracker.qps("a")
        registry.drop(entry="a")
        registry.counter(
            "engine_entry_cache_misses_total", "m", entry="a", shard="1"
        ).inc(5)
        tracker.fold(registry)
        assert 0.0 <= tracker.qps("a") <= before

    def test_frontend_and_engine_fold_as_max_not_sum(self):
        # Coalescing makes the engine series undercount (one table access
        # per group); the frontend series counts every request.  Folding
        # takes the larger view, never the sum.
        tracker, _clock = make_tracker(half_life_s=10.0)
        registry = MetricsRegistry()
        registry.counter(
            "engine_entry_cache_misses_total", "m", entry="a"
        ).inc(10)
        registry.counter(
            "frontend_entry_requests_total", "r", entry="a"
        ).inc(30)
        tracker.fold(registry)
        assert tracker.qps("a") == pytest.approx(30 * _LN2 / 10.0)

    def test_fold_sums_across_shard_label_sets(self):
        tracker, _clock = make_tracker(half_life_s=10.0)
        registry = MetricsRegistry()
        for shard, count in (("0", 4), ("1", 6)):
            registry.counter(
                "engine_entry_cache_hits_total", "h", entry="a", shard=shard
            ).inc(count)
        tracker.fold(registry)
        assert tracker.qps("a") == pytest.approx(10 * _LN2 / 10.0)

    def test_top_ranks_hottest_first(self):
        tracker, _clock = make_tracker()
        tracker.observe("cold", 1)
        tracker.observe("hot", 100)
        tracker.observe("warm", 10)
        names = [name for name, _qps in tracker.top(2)]
        assert names == ["hot", "warm"]

    def test_hit_rate(self):
        tracker, _clock = make_tracker()
        registry = MetricsRegistry()
        registry.counter(
            "engine_entry_cache_hits_total", "h", entry="a"
        ).inc(3)
        registry.counter(
            "engine_entry_cache_misses_total", "m", entry="a"
        ).inc(1)
        tracker.fold(registry)
        assert tracker.hit_rate("a") == pytest.approx(0.75)
        assert tracker.hit_rate("never-queried") is None


# --------------------------------------------------------------------- #
# Rebalancer policy
# --------------------------------------------------------------------- #


def build_router(num_shards=4):
    rng = np.random.default_rng(0)
    router = ShardRouter(num_shards=num_shards)
    vals = rng.random(256) + 0.01
    for name in ("a", "b", "c"):
        router.register(name, vals, family="merging", k=6)
    return router


class TestRebalancer:
    def test_cool_must_not_exceed_hot(self):
        tracker, _clock = make_tracker()
        with pytest.raises(ValueError, match="hysteresis"):
            Rebalancer(tracker, hot_qps=1.0, cool_qps=2.0)

    def test_migrates_hot_entry_off_crowded_shard(self):
        router = build_router()
        # Force every entry onto shard 0 so the hot one has competition.
        for name in router.names():
            router.migrate(name, 0)
        tracker, _clock = make_tracker()
        tracker.observe("a", 500)
        tracker.observe("b", 80)
        tracker.observe("c", 80)
        policy = Rebalancer(tracker, hot_qps=1.0, replicate_qps=1e9)
        actions = policy.rebalance(router, fold=False)
        migrated = {act.name for act in actions if act.action == "migrate"}
        assert "a" in migrated
        assert router.shard_map.shard_of("a") != 0
        # The move is real: the entry still answers.
        assert float(np.asarray(router.range_sum("a", 0, 100))) > 0

    def test_second_pass_is_a_noop(self):
        # Hysteresis: once balanced, repeated passes change nothing even
        # though the entries are still promoted.
        router = build_router()
        for name in router.names():
            router.migrate(name, 0)
        tracker, _clock = make_tracker()
        tracker.observe("a", 500)
        tracker.observe("b", 400)
        policy = Rebalancer(tracker, hot_qps=1.0, replicate_qps=1e9)
        assert policy.rebalance(router, fold=False)
        assert policy.rebalance(router, fold=False) == []

    def test_lone_hot_entry_stays_put(self):
        # A hot entry alone on its shard has no competing load: nothing
        # to gain by moving it.
        router = build_router()
        router.migrate("a", 3)
        tracker, _clock = make_tracker()
        tracker.observe("a", 500)
        policy = Rebalancer(tracker, hot_qps=1.0, replicate_qps=1e9)
        actions = policy.rebalance(router, fold=False)
        assert not [act for act in actions if act.action == "migrate"]
        assert router.shard_map.shard_of("a") == 3

    def test_replicates_read_hot_entry(self):
        router = build_router()
        tracker, _clock = make_tracker()
        tracker.observe("a", 1000)
        policy = Rebalancer(tracker, hot_qps=1.0, replicate_qps=2.0)
        actions = policy.rebalance(router, fold=False)
        added = [act for act in actions if act.action == "replicate"]
        assert len(added) == router.num_shards - 1
        assert len(router.replicas_of("a")) == router.num_shards - 1

    def test_max_replicas_caps_fan_out(self):
        router = build_router()
        tracker, _clock = make_tracker()
        tracker.observe("a", 1000)
        policy = Rebalancer(
            tracker, hot_qps=1.0, replicate_qps=2.0, max_replicas=1
        )
        policy.rebalance(router, fold=False)
        assert len(router.replicas_of("a")) == 1
        # A second pass respects the cap rather than topping up.
        assert policy.rebalance(router, fold=False) == []

    def test_cooled_entry_sheds_replicas(self):
        router = build_router()
        tracker, clock = make_tracker(half_life_s=1.0)
        tracker.observe("a", 1000)
        policy = Rebalancer(tracker, hot_qps=1.0, replicate_qps=2.0)
        policy.rebalance(router, fold=False)
        assert router.replicas_of("a")
        clock.advance(60.0)  # decay well below cool_qps
        actions = policy.rebalance(router, fold=False)
        assert {act.action for act in actions} == {"drop_replica"}
        assert router.replicas_of("a") == []

    def test_hysteresis_band_keeps_replicas(self):
        # Between cool_qps and hot_qps the entry stays promoted: its
        # replicas survive even though it would not promote afresh.
        router = build_router()
        tracker, clock = make_tracker(half_life_s=10.0)
        tracker.observe("a", 1000)
        policy = Rebalancer(tracker, hot_qps=40.0, replicate_qps=50.0)
        policy.rebalance(router, fold=False)
        assert router.replicas_of("a")
        # One half-life: ~34 qps, inside the (20, 40) hysteresis band.
        clock.advance(10.0)
        assert policy.cool_qps < tracker.qps("a") < policy.hot_qps
        assert policy.rebalance(router, fold=False) == []
        assert router.replicas_of("a")

    def test_rebalance_folds_live_registry_by_default(self):
        # End to end without observe(): real queries through the router
        # feed the engine counters, fold() turns them into heat, and the
        # policy acts on it.
        router = build_router(num_shards=2)
        tracker = HotnessTracker(half_life_s=30.0)
        for _ in range(4):
            router.range_sum("a", np.zeros(64, int), np.full(64, 100))
        policy = Rebalancer(tracker, hot_qps=0.01, replicate_qps=0.05)
        actions = policy.rebalance(router)
        assert any(act.action == "replicate" for act in actions)


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


class TestRebalanceCLI:
    def test_serve_repl_rebalance_command(self):
        hot = "range merging 0 100\n" * 40
        commands = io.StringIO(hot + "rebalance\nrebalance\nquit\n")
        out = io.StringIO()
        assert serve_main(
            ["--n", "512", "--k", "4", "--families", "merging,wavelet",
             "--shards", "2", "--hot-qps", "0.01",
             "--replicate-qps", "0.05"],
            stdin=commands,
            stdout=out,
        ) == 0
        text = out.getvalue()
        assert "replicate merging" in text
        # Second pass on an already-balanced router reports the no-op.
        assert "(no placement changes)" in text

    def test_rebalance_interval_must_be_positive(self):
        with pytest.raises(SystemExit, match="rebalance-interval"):
            serve_main(
                ["--n", "256", "--families", "merging",
                 "--rebalance-interval", "0"],
                stdin=io.StringIO("quit\n"),
                stdout=io.StringIO(),
            )

    def test_metrics_top_lists_hottest(self, tmp_path, capsys):
        target = tmp_path / "store"
        assert main(
            ["save", "--n", "512", "--k", "4",
             "--families", "merging,wavelet", "--store-dir", str(target)]
        ) == 0
        capsys.readouterr()
        assert metrics_main([str(target), "--top", "1"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "qps" in line]
        assert len(lines) == 1
        assert "cache hit rate" in lines[0]

    def test_metrics_top_without_probe_reports_nothing(self, tmp_path, capsys):
        target = tmp_path / "store"
        assert main(
            ["save", "--n", "256", "--k", "4", "--families", "merging",
             "--store-dir", str(target)]
        ) == 0
        capsys.readouterr()
        assert metrics_main([str(target), "--top", "3", "--no-probe"]) == 0
        assert "(no queries observed)" in capsys.readouterr().out

    def test_metrics_top_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit, match="--top"):
            metrics_main([str(tmp_path), "--top", "0"])
