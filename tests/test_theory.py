"""Tests for the sample-complexity theory module (repro.sampling.theory)."""

import math

import numpy as np
import pytest

from repro import (
    DiscreteDistribution,
    distinguishing_error,
    draw_empirical,
    expected_empirical_l2,
    hellinger_sample_lower_bound,
    lower_bound_pair,
    sample_size,
)


class TestSampleSize:
    def test_scales_inverse_square_eps(self):
        assert sample_size(0.05, 0.1) == pytest.approx(4 * sample_size(0.1, 0.1), rel=0.01)

    def test_scales_log_inverse_delta(self):
        base = sample_size(0.01, 0.5)
        tiny_delta = sample_size(0.01, 1e-6)
        # log(1/delta) grows: the tail term eventually dominates.
        assert tiny_delta > base
        ratio = sample_size(0.01, 1e-12) / sample_size(0.01, 1e-6)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_mean_term_floor(self):
        # For moderate delta the 16/eps^2 mean term dominates.
        assert sample_size(0.1, 0.3) == math.ceil(16.0 / 0.01)

    def test_validation(self):
        for bad_eps in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                sample_size(bad_eps, 0.1)
        for bad_delta in (0.0, 1.0):
            with pytest.raises(ValueError):
                sample_size(0.1, bad_delta)


class TestExpectedEmpiricalL2:
    def test_formula(self):
        p = DiscreteDistribution(np.asarray([0.5, 0.5]))
        expected = math.sqrt((0.25 + 0.25) / 100)
        assert expected_empirical_l2(p, 100) == pytest.approx(expected)

    def test_below_envelope(self):
        """sqrt(E||.||^2) < 1/sqrt(m) for every p (Lemma 3.1)."""
        rng = np.random.default_rng(2)
        for _ in range(5):
            p = DiscreteDistribution.from_nonnegative(rng.random(50) + 0.01)
            assert expected_empirical_l2(p, 123) < 1.0 / math.sqrt(123)

    def test_point_mass_is_zero(self):
        pmf = np.zeros(5)
        pmf[0] = 1.0
        assert expected_empirical_l2(DiscreteDistribution(pmf), 10) == 0.0

    def test_matches_monte_carlo(self, rng):
        p = DiscreteDistribution.from_nonnegative(rng.random(30) + 0.05)
        m = 500
        sq_errors = [p.l2_to(draw_empirical(p, m, rng)) ** 2 for _ in range(300)]
        mc = math.sqrt(float(np.mean(sq_errors)))
        assert mc == pytest.approx(expected_empirical_l2(p, m), rel=0.1)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            expected_empirical_l2(DiscreteDistribution.uniform(3), 0)


class TestLowerBoundPair:
    def test_structure(self):
        p1, p2 = lower_bound_pair(10, 0.1)
        assert p1.pmf[0] == pytest.approx(0.6)
        assert p1.pmf[1] == pytest.approx(0.4)
        assert p2.pmf[0] == pytest.approx(0.4)
        assert np.all(p1.pmf[2:] == 0.0)

    def test_l2_distance(self):
        eps = 0.07
        p1, p2 = lower_bound_pair(6, eps)
        assert p1.l2_to(p2) == pytest.approx(2.0 * math.sqrt(2.0) * eps)

    def test_hellinger_bound(self):
        """h^2 = 1 - sqrt(1 - 4 eps^2) in [2 eps^2, 4 eps^2].

        (The paper's proof states h^2 <= 2 eps^2; the exact value is
        4 eps^2 / (1 + sqrt(1 - 4 eps^2)) which *lower*-bounds at 2 eps^2 —
        the Theta(eps^2) scaling the theorem needs is unchanged.)
        """
        for eps in (0.05, 0.1, 0.3):
            p1, p2 = lower_bound_pair(4, eps)
            h_sq = p1.hellinger_to(p2) ** 2
            assert 2.0 * eps * eps - 1e-12 <= h_sq <= 4.0 * eps * eps + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_bound_pair(1, 0.1)
        with pytest.raises(ValueError):
            lower_bound_pair(5, 0.5)


class TestHellingerLowerBound:
    def test_monotone_in_delta(self):
        assert hellinger_sample_lower_bound(0.1, 0.001) > hellinger_sample_lower_bound(0.1, 0.1)

    def test_scales_with_eps(self):
        ratio = hellinger_sample_lower_bound(0.05, 0.1) / hellinger_sample_lower_bound(0.1, 0.1)
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            hellinger_sample_lower_bound(0.6, 0.1)
        with pytest.raises(ValueError):
            hellinger_sample_lower_bound(0.1, 0.7)


class TestDistinguishingError:
    def test_decays_with_m(self, rng):
        few = distinguishing_error(0.1, 10, 2000, rng)
        many = distinguishing_error(0.1, 2000, 2000, rng)
        assert many < few
        assert many < 0.01

    def test_near_half_when_hopeless(self, rng):
        err = distinguishing_error(0.01, 2, 4000, rng)
        assert err > 0.3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            distinguishing_error(0.1, 0, 10, rng)
        with pytest.raises(ValueError):
            distinguishing_error(0.1, 10, 0, rng)
        with pytest.raises(ValueError):
            distinguishing_error(0.7, 10, 10, rng)

    def test_matches_exponential_decay_shape(self, rng):
        """Error ~ exp(-Theta(m eps^2)): quadrupling m at half eps keeps
        the error in the same ballpark."""
        a = distinguishing_error(0.2, 100, 6000, rng)
        b = distinguishing_error(0.1, 400, 6000, rng)
        assert abs(a - b) < 0.05
