"""Tests for sharded concurrent serving (repro.serve.router / frontend).

Covers the shard map (stable hashing, persisted assignments beating the
hash, sticky placement across remove), router/engine parity with the
unsharded pair, the async front end (request-order reassembly,
coalescing, per-request error isolation, snapshot versions), sharded
persistence (parent manifest round trip bitwise-identical to the
unsharded store, golden fixture, corruption), resharding as migration,
and the concurrent refresh-while-query stress test (``-m slow``).
"""

import asyncio
import io
import json
import shutil
import threading

import numpy as np
import pytest

from repro import (
    AsyncServingFrontend,
    QueryEngine,
    QueryRequest,
    ShardMap,
    ShardRouter,
    StoreCorruptionError,
    StreamingHistogramLearner,
    SynopsisStore,
    load_sharded,
    save_sharded,
)
from repro.__main__ import main
from repro.serve.engine import PrefixTable
from repro.serve.persistence import (
    SHARDED_SCHEMA_VERSION,
    detect_store_format,
    read_sharded_manifest,
)
from repro.serve.router import stable_shard

from helpers import summary_metadata
from test_persistence import FIXTURES


def signal(n=240, seed=3):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(1.0, 0.5, n)) + 1e-6


def populate(target, names, n=240):
    """Register one merging synopsis per name into a store or router."""
    for index, name in enumerate(names):
        target.register(name, signal(n, seed=index), family="merging", k=5)


NAMES = [f"series-{i}" for i in range(10)]


# --------------------------------------------------------------------- #
# Shard map
# --------------------------------------------------------------------- #


class TestShardMap:
    def test_stable_hash_is_deterministic_and_spread(self):
        assignments = [stable_shard(name, 4) for name in NAMES]
        assert assignments == [stable_shard(name, 4) for name in NAMES]
        assert all(0 <= a < 4 for a in assignments)
        assert len(set(assignments)) > 1  # 10 names over 4 shards spread out

    def test_assignments_persist_over_hash(self):
        # An explicit assignment that disagrees with the hash must win:
        # that is what makes resharding deliberate rather than accidental.
        hashed = stable_shard("a", 4)
        override = (hashed + 1) % 4
        shard_map = ShardMap(4, {"a": override})
        assert shard_map.shard_of("a") == override
        clone = ShardMap.from_dict(json.loads(json.dumps(shard_map.to_dict())))
        assert clone.shard_of("a") == override
        assert clone.num_shards == 4

    def test_assign_records(self):
        shard_map = ShardMap(4)
        assert "x" not in shard_map
        index = shard_map.assign("x")
        assert "x" in shard_map and shard_map.assignments() == {"x": index}
        assert index == stable_shard("x", 4)

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ShardMap(2, {"a": 5})
        with pytest.raises(ValueError, match="num_shards"):
            ShardMap(0)

    def test_future_schema_rejected(self):
        payload = ShardMap(2).to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="newer"):
            ShardMap.from_dict(payload)


# --------------------------------------------------------------------- #
# Router: parity with the unsharded store/engine pair
# --------------------------------------------------------------------- #


@pytest.fixture
def pair():
    """The same entries registered unsharded and over 4 shards."""
    store = SynopsisStore()
    populate(store, NAMES)
    router = ShardRouter(num_shards=4)
    populate(router, NAMES)
    return QueryEngine(store), router


class TestRouterParity:
    def test_every_query_kind_identical(self, pair):
        engine, router = pair
        rng = np.random.default_rng(0)
        a = rng.integers(0, 240, 100)
        b = rng.integers(0, 240, 100)
        a, b = np.minimum(a, b), np.maximum(a, b)
        x = rng.integers(0, 240, 100)
        q = rng.random(50)
        for name in NAMES:
            np.testing.assert_array_equal(
                router.range_sum(name, a, b), engine.range_sum(name, a, b)
            )
            np.testing.assert_array_equal(
                router.range_mean(name, a, b), engine.range_mean(name, a, b)
            )
            np.testing.assert_array_equal(
                router.point_mass(name, x), engine.point_mass(name, x)
            )
            np.testing.assert_array_equal(router.cdf(name, x), engine.cdf(name, x))
            np.testing.assert_array_equal(
                router.quantile(name, q), engine.quantile(name, q)
            )
            assert router.top_k_buckets(name, 3) == engine.top_k_buckets(name, 3)

    def test_names_keep_registration_order(self, pair):
        _, router = pair
        assert router.names() == NAMES
        assert [m["name"] for m in router.summary()] == NAMES
        assert len(router) == len(NAMES)
        assert set(router) == set(NAMES)

    def test_entries_actually_distributed(self, pair):
        _, router = pair
        sizes = [len(shard) for shard in router.shards]
        assert sum(sizes) == len(NAMES)
        assert sum(1 for size in sizes if size > 0) > 1

    def test_describe_reports_shard(self, pair):
        _, router = pair
        for name in NAMES:
            meta = router.describe(name)
            assert meta["shard"] == router.shard_map.shard_of(name)
            assert name in router.shards[meta["shard"]].store

    def test_unknown_name(self, pair):
        _, router = pair
        with pytest.raises(KeyError, match="registered"):
            router.range_sum("nope", 0, 1)
        with pytest.raises(KeyError, match="registered"):
            router.refresh("nope")

    def test_remove_is_sticky(self, pair):
        _, router = pair
        name = NAMES[0]
        home = router.shard_map.shard_of(name)
        version = router[name].version
        router.remove(name)
        assert name not in router
        assert router.names() == NAMES[1:]
        router.register(name, signal(seed=99), family="merging", k=4)
        assert router.shard_map.shard_of(name) == home  # same shard
        assert router[name].version == version + 1  # never reissued

    def test_streaming_entries_route(self):
        router = ShardRouter(num_shards=3)
        rng = np.random.default_rng(5)
        learner = StreamingHistogramLearner(n=80, k=3)
        learner.extend(rng.integers(0, 40, 400))
        router.register_stream("live", learner)
        before = router.cdf("live", 39)
        assert before == pytest.approx(1.0, abs=1e-9)
        router.extend("live", rng.integers(40, 80, 4000))  # forces refresh
        assert router["live"].version == 1
        assert router.cdf("live", 39) < 0.5

    def test_cache_info_aggregates(self, pair):
        _, router = pair
        router.range_sum(NAMES[0], 0, 10)
        router.range_sum(NAMES[0], 0, 10)
        router.range_sum(NAMES[1], 0, 10)
        info = router.cache_info()
        assert info["hits"] == 1 and info["misses"] == 2
        assert info["entries"][NAMES[0]]["hits"] == 1
        assert info["entries"][NAMES[1]]["misses"] == 1
        assert len(info["shards"]) == 4
        assert router.entry_cache_info(NAMES[0])["hits"] == 1

    def test_warm(self, pair):
        _, router = pair
        assert router.warm() == len(NAMES)
        assert router.cache_info()["misses"] == len(NAMES)
        router.warm()
        assert router.cache_info()["hits"] == len(NAMES)

    def test_shard_map_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shard map covers"):
            ShardRouter(num_shards=3, shard_map=ShardMap(2))

    def test_from_stores_validates_placement(self):
        # Map says shard 0, but the entry lives in store 1 -> rejected.
        store = SynopsisStore()
        store.register("a", signal(), family="merging", k=3)
        shard_map = ShardMap(2, {"a": 0})
        with pytest.raises(ValueError, match="shard map places"):
            ShardRouter.from_stores([SynopsisStore(), store], shard_map=shard_map)
        # Without a map, placement is adopted from where entries live.
        adopted = ShardRouter.from_stores([SynopsisStore(), store])
        assert adopted.shard_map.shard_of("a") == 1
        assert adopted.range_sum("a", 0, 10) == pytest.approx(
            QueryEngine(store).range_sum("a", 0, 10), abs=0.0
        )


class TestReshard:
    def test_reshard_preserves_entries_and_versions(self, pair):
        engine, router = pair
        router.register(NAMES[0], signal(seed=42), family="merging", k=4)
        assert router[NAMES[0]].version == 1
        wide = router.reshard(8)
        assert wide.num_shards == 8
        assert wide.names() == router.names()
        assert wide[NAMES[0]].version == 1
        rng = np.random.default_rng(1)
        a = rng.integers(0, 240, 50)
        b = rng.integers(0, 240, 50)
        a, b = np.minimum(a, b), np.maximum(a, b)
        for name in NAMES:
            np.testing.assert_array_equal(
                wide.range_sum(name, a, b), router.range_sum(name, a, b)
            )

    def test_reshard_to_one_collapses(self, pair):
        _, router = pair
        single = router.reshard(1)
        assert single.num_shards == 1
        assert len(single.shards[0].store) == len(NAMES)

    def test_reshard_keeps_version_floor(self, pair):
        _, router = pair
        router.remove(NAMES[2])
        narrow = router.reshard(2)
        entry = narrow.register(NAMES[2], signal(seed=7), family="merging", k=4)
        assert entry.version == 1  # floor survived the migration


# --------------------------------------------------------------------- #
# Async front end
# --------------------------------------------------------------------- #


@pytest.fixture
def frontend(pair):
    _, router = pair
    with AsyncServingFrontend(router) as fe:
        yield fe


class TestFrontend:
    def test_results_in_request_order_and_match_engine(self, pair, frontend):
        engine, _ = pair
        rng = np.random.default_rng(2)
        requests = []
        expected = []
        for i in range(60):
            name = NAMES[int(rng.integers(len(NAMES)))]
            a = rng.integers(0, 240, 16)
            b = rng.integers(0, 240, 16)
            a, b = np.minimum(a, b), np.maximum(a, b)
            requests.append(QueryRequest("range_sum", name, (a, b)))
            expected.append(engine.range_sum(name, a, b))
        results = frontend.serve(requests)
        assert [r.index for r in results] == list(range(60))
        for result, want in zip(results, expected):
            assert result.ok and result.version == 0
            np.testing.assert_array_equal(result.value, want)

    def test_all_kinds(self, pair, frontend):
        engine, _ = pair
        name = NAMES[0]
        x = np.arange(0, 240, 7)
        q = np.linspace(0.0, 1.0, 11)
        requests = [
            QueryRequest("range_sum", name, (0, 239)),
            QueryRequest("range_mean", name, (x, x)),
            QueryRequest("point_mass", name, (x,)),
            QueryRequest("cdf", name, (x,)),
            QueryRequest("quantile", name, (q,)),
            QueryRequest("top_k", name, (3,)),
        ]
        results = frontend.serve(requests)
        assert all(r.ok for r in results)
        assert results[0].value == pytest.approx(
            engine.range_sum(name, 0, 239), abs=0.0
        )
        np.testing.assert_array_equal(results[1].value, engine.point_mass(name, x))
        np.testing.assert_array_equal(results[2].value, engine.point_mass(name, x))
        np.testing.assert_array_equal(results[3].value, engine.cdf(name, x))
        np.testing.assert_array_equal(results[4].value, engine.quantile(name, q))
        assert results[5].value == engine.top_k_buckets(name, 3)

    def test_scalar_requests_stay_scalar(self, frontend, pair):
        engine, _ = pair
        results = frontend.serve(
            [
                QueryRequest("range_sum", NAMES[0], (3, 17)),
                QueryRequest("range_sum", NAMES[0], (5, 5)),
                QueryRequest("quantile", NAMES[0], (0.5,)),
            ]
        )
        assert isinstance(results[0].value, float)
        assert results[0].value == engine.range_sum(NAMES[0], 3, 17)
        assert isinstance(results[2].value, int)
        assert results[2].value == engine.quantile(NAMES[0], 0.5)

    def test_coalescing_matches_individual(self, pair):
        engine, router = pair
        rng = np.random.default_rng(3)
        requests = []
        for _ in range(40):  # many same-name groups
            name = NAMES[int(rng.integers(3))]
            a = rng.integers(0, 240, 8)
            b = rng.integers(0, 240, 8)
            a, b = np.minimum(a, b), np.maximum(a, b)
            requests.append(QueryRequest("range_sum", name, (a, b)))
        with AsyncServingFrontend(router, coalesce=True) as on, \
                AsyncServingFrontend(router, coalesce=False) as off:
            merged = on.serve(requests)
            individual = off.serve(requests)
        for lhs, rhs in zip(merged, individual):
            np.testing.assert_array_equal(lhs.value, rhs.value)
            assert lhs.version == rhs.version

    def test_coalescing_mixed_shape_args_do_not_cross(self, pair):
        """Regression: a request with (array, scalar) or mismatched-length
        args must broadcast within itself before stacking, or neighbors'
        a/b pairs silently cross in the coalesced call."""
        engine, router = pair
        name = NAMES[0]
        requests = [
            QueryRequest("range_sum", name, (np.asarray([0, 1]), 5)),
            QueryRequest("range_sum", name, (np.asarray([10]), np.asarray([20, 30]))),
            QueryRequest("range_sum", name, (2, np.asarray([4, 9, 14]))),
        ]
        with AsyncServingFrontend(router, coalesce=True) as fe:
            results = fe.serve(requests)
        assert all(r.ok for r in results)
        np.testing.assert_array_equal(
            results[0].value, engine.range_sum(name, np.asarray([0, 1]), 5)
        )
        np.testing.assert_array_equal(
            results[1].value,
            engine.range_sum(name, np.asarray([10]), np.asarray([20, 30])),
        )
        np.testing.assert_array_equal(
            results[2].value, engine.range_sum(name, 2, np.asarray([4, 9, 14]))
        )

    def test_multidimensional_args_not_miscoalesced(self, pair):
        """Regression: 2-D query arrays stack along axis 0 with the wrong
        element-count lengths; they must bypass coalescing and still
        answer exactly like the engine."""
        engine, router = pair
        name = NAMES[0]
        a = np.asarray([[0, 5], [10, 15]])
        b = a + 20
        requests = [
            QueryRequest("range_sum", name, (a, b)),
            QueryRequest("range_sum", name, (a + 1, b + 1)),
        ]
        with AsyncServingFrontend(router, coalesce=True) as fe:
            results = fe.serve(requests)
        assert all(r.ok for r in results)
        assert results[0].value.shape == (2, 2)
        np.testing.assert_array_equal(results[0].value, engine.range_sum(name, a, b))
        np.testing.assert_array_equal(
            results[1].value, engine.range_sum(name, a + 1, b + 1)
        )

    def test_bad_request_isolated(self, frontend):
        requests = [
            QueryRequest("range_sum", NAMES[0], (0, 10)),
            QueryRequest("range_sum", "nope", (0, 10)),
            QueryRequest("range_sum", NAMES[0], (0, 10_000)),  # out of range
            QueryRequest("range_sum", NAMES[0], (5, 20)),
        ]
        results = frontend.serve(requests)
        assert results[0].ok and results[3].ok
        assert not results[1].ok and "registered" in results[1].error
        assert not results[2].ok and "ranges must satisfy" in results[2].error

    def test_bad_request_inside_coalesced_group_isolated(self, frontend):
        # Same (name, kind) group: the poisoned member must not take the
        # healthy ones down with it.
        requests = [
            QueryRequest("range_sum", NAMES[0], (0, 10)),
            QueryRequest("range_sum", NAMES[0], (0, 10_000)),
            QueryRequest("range_sum", NAMES[0], (7, 9)),
        ]
        results = frontend.serve(requests)
        assert results[0].ok and results[2].ok
        assert not results[1].ok

    def test_invalid_request_construction(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            QueryRequest("median", "a", (0.5,))
        with pytest.raises(ValueError, match="argument"):
            QueryRequest("range_sum", "a", (1,))

    def test_mapping_and_string_args_rejected_at_construction(self):
        # Regression: a dict or str has a len() too, so these used to pass
        # the arity check and die deep in evaluation with "could not
        # convert string to float: 'q'".  They must fail at construction
        # with the expected positional form spelled out.
        with pytest.raises(TypeError, match=r"positional.*\(q,\)"):
            QueryRequest("quantile", "a", {"q": 0.5})
        with pytest.raises(TypeError, match=r"positional.*\(a, b\)"):
            QueryRequest("range_sum", "a", "ab")
        with pytest.raises(TypeError, match="positional"):
            QueryRequest("cdf", "a", 7)  # not iterable at all

    def test_args_normalized_to_tuple(self):
        request = QueryRequest("range_sum", "a", [3, 9])
        assert request.args == (3, 9)
        assert isinstance(request.args, tuple)

    def test_async_write_bumps_version_in_results(self, pair):
        _, router = pair
        rng = np.random.default_rng(4)
        learner = StreamingHistogramLearner(n=100, k=3)
        learner.extend(rng.integers(0, 100, 300))
        router.register_stream("live", learner)

        async def scenario(fe):
            before = await fe.query_batch([QueryRequest("cdf", "live", (50,))])
            await fe.extend("live", rng.integers(0, 100, 5000))  # refresh
            await fe.refresh("live")
            after = await fe.query_batch([QueryRequest("cdf", "live", (50,))])
            return before[0], after[0]

        with AsyncServingFrontend(router) as fe:
            before, after = asyncio.run(scenario(fe))
        assert before.version == 0
        assert after.version == router["live"].version >= 2


# --------------------------------------------------------------------- #
# Sharded persistence
# --------------------------------------------------------------------- #


@pytest.fixture
def saved_sharded(tmp_path):
    router = ShardRouter(num_shards=3)
    populate(router, NAMES[:6])
    rng = np.random.default_rng(11)
    learner = StreamingHistogramLearner(n=64, k=3)
    learner.extend(rng.integers(0, 64, 500))
    router.register_stream("live", learner)
    path = tmp_path / "sharded"
    router.save(path)
    return router, path


class TestShardedPersistence:
    def test_round_trip_matches_unsharded_bitwise(self, tmp_path):
        """Acceptance: save_sharded -> load_sharded answers bitwise equal
        to the unsharded store over identical registrations."""
        store = SynopsisStore()
        populate(store, NAMES)
        engine = QueryEngine(store)

        router = ShardRouter(num_shards=4)
        populate(router, NAMES)
        save_sharded(router, tmp_path / "sharded")
        loaded = load_sharded(tmp_path / "sharded")

        assert summary_metadata(loaded) == summary_metadata(router)
        assert [m["name"] for m in loaded.summary()] == [
            m["name"] for m in store.summary()
        ]
        rng = np.random.default_rng(8)
        a = rng.integers(0, 240, 64)
        b = rng.integers(0, 240, 64)
        a, b = np.minimum(a, b), np.maximum(a, b)
        x = rng.integers(0, 240, 64)
        q = rng.random(32)
        for name in NAMES:
            np.testing.assert_array_equal(
                loaded.range_sum(name, a, b), engine.range_sum(name, a, b)
            )
            np.testing.assert_array_equal(
                loaded.range_mean(name, a, b), engine.range_mean(name, a, b)
            )
            np.testing.assert_array_equal(
                loaded.point_mass(name, x), engine.point_mass(name, x)
            )
            np.testing.assert_array_equal(loaded.cdf(name, x), engine.cdf(name, x))
            np.testing.assert_array_equal(
                loaded.quantile(name, q), engine.quantile(name, q)
            )
            assert loaded.top_k_buckets(name, 3) == engine.top_k_buckets(name, 3)

    def test_layout_and_manifest(self, saved_sharded):
        router, path = saved_sharded
        assert detect_store_format(path) == "sharded"
        manifest = read_sharded_manifest(path)
        # No cohorts defined, so the parent stamps the pre-cohort schema.
        assert manifest["schema"] == SHARDED_SCHEMA_VERSION - 1
        assert manifest["num_shards"] == 3
        assert (path / "shard-0000" / "manifest.json").is_file()
        assert manifest["shard_map"]["assignments"] == (
            router.shard_map.assignments()
        )

    def test_lazy_load_hydrates_per_shard(self, saved_sharded):
        _, path = saved_sharded
        loaded = ShardRouter.load(path)
        assert all(
            not loaded[name].is_hydrated for name in loaded.names()
        )
        loaded.range_sum(loaded.names()[0], 0, 10)
        assert loaded[loaded.names()[0]].is_hydrated
        touched = loaded.shard_map.shard_of(loaded.names()[0])
        for name in loaded.names()[1:]:
            if loaded.shard_map.shard_of(name) != touched:
                assert not loaded[name].is_hydrated

    def test_streaming_entry_resumes(self, saved_sharded):
        router, path = saved_sharded
        loaded = ShardRouter.load(path)
        entry = loaded["live"]
        assert entry.describe()["samples_seen"] == 500
        rng = np.random.default_rng(12)
        batch = rng.integers(0, 64, 700)
        assert (
            loaded.extend("live", batch).version
            == router.extend("live", batch).version
        )

    def test_save_replaces_atomically(self, saved_sharded, tmp_path):
        router, path = saved_sharded
        router.register("extra", signal(seed=50), family="merging", k=3)
        router.save(path)  # replace in place
        loaded = ShardRouter.load(path)
        assert "extra" in loaded
        leftovers = [p.name for p in path.parent.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_concurrent_register_cannot_tear_the_snapshot(
        self, tmp_path, monkeypatch
    ):
        """Regression: a register racing save_sharded must not produce a
        manifest whose shard map names an entry absent from its shard dir
        — the saved map and shards are one point-in-time snapshot."""
        import time as time_mod

        import repro.serve.persistence as persistence

        router = ShardRouter(num_shards=2)
        populate(router, NAMES[:4])
        real = persistence._write_store_contents

        def slow_write(store, target, **kwargs):
            time_mod.sleep(0.05)  # hold the snapshot window open
            real(store, target, **kwargs)

        monkeypatch.setattr(persistence, "_write_store_contents", slow_write)
        path = tmp_path / "sharded"
        saver = threading.Thread(target=lambda: router.save(path))
        saver.start()
        time_mod.sleep(0.02)  # land mid-save
        router.register("late", signal(seed=77), family="merging", k=3)
        saver.join()
        monkeypatch.undo()

        manifest = read_sharded_manifest(path)
        loaded = load_sharded(path)
        in_map = "late" in manifest["shard_map"]["assignments"]
        assert in_map == ("late" in loaded.names()), (
            "saved shard map and shard contents disagree about 'late'"
        )

    def test_refuses_non_store_target(self, saved_sharded, tmp_path):
        router, _ = saved_sharded
        target = tmp_path / "precious"
        target.mkdir()
        (target / "data.txt").write_text("keep me")
        with pytest.raises(ValueError, match="not a\n?.*synopsis store"):
            router.save(target)
        assert (target / "data.txt").read_text() == "keep me"

    def test_plain_loaders_reject_each_other(self, saved_sharded, tmp_path):
        _, path = saved_sharded
        with pytest.raises(StoreCorruptionError, match="sharded store"):
            SynopsisStore.load(path)
        store = SynopsisStore()
        store.register("a", signal(), family="merging", k=3)
        store.save(tmp_path / "plain")
        with pytest.raises(StoreCorruptionError, match="unsharded store"):
            load_sharded(tmp_path / "plain")

    def test_missing_shard_dir(self, saved_sharded):
        _, path = saved_sharded
        shutil.rmtree(path / "shard-0001")
        with pytest.raises(StoreCorruptionError, match="missing shard directory"):
            load_sharded(path)

    def test_tampered_shard_map_detected(self, saved_sharded):
        # Move one name's assignment to another shard without moving the
        # entry: placement and contents disagree -> corruption.
        _, path = saved_sharded
        manifest = json.loads((path / "manifest.json").read_text())
        assignments = manifest["shard_map"]["assignments"]
        name = next(iter(assignments))
        assignments[name] = (assignments[name] + 1) % manifest["num_shards"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptionError, match="inconsistent sharded store"):
            load_sharded(path)

    def test_rotted_parent_manifest_fields(self, saved_sharded):
        _, path = saved_sharded
        good = json.loads((path / "manifest.json").read_text())

        bad = json.loads(json.dumps(good))
        bad["num_shards"] = "three"
        (path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(StoreCorruptionError, match="invalid num_shards"):
            load_sharded(path)

        bad = json.loads(json.dumps(good))
        bad["shard_dirs"] = ["shard-0000"]
        (path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(StoreCorruptionError, match="shard dirs"):
            load_sharded(path)

        bad = json.loads(json.dumps(good))
        bad["shard_dirs"][0] = "../escape"
        (path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(StoreCorruptionError, match="invalid shard directory"):
            load_sharded(path)

        bad = json.loads(json.dumps(good))
        bad["schema"] = SHARDED_SCHEMA_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(StoreCorruptionError, match="newer than"):
            load_sharded(path)


class TestGoldenShardedFixture:
    """The sharded parent manifest must not drift silently (schema guard)."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(
            FIXTURES / "golden_sharded_expected.json", "r", encoding="utf-8"
        ) as handle:
            expected = json.load(handle)
        router = ShardRouter.load(FIXTURES / "golden_sharded_store")
        return router, expected

    def test_schema_version_matches(self):
        # The cohort-less golden stamps the pre-cohort schema (cohort
        # bump: SHARDED_SCHEMA_VERSION is reserved for parents that
        # persist a cohorts table).
        manifest = read_sharded_manifest(FIXTURES / "golden_sharded_store")
        assert manifest["schema"] == SHARDED_SCHEMA_VERSION - 1 == 2, (
            "sharded schema version bumped: regenerate the golden fixtures "
            "with tests/fixtures/make_golden_store.py and commit them"
        )

    def test_shard_map_matches(self, golden):
        router, expected = golden
        assert router.num_shards == expected["num_shards"]
        assert router.shard_map.assignments() == expected["shard_map"]

    def test_fixture_is_genuinely_multi_shard(self, golden):
        # Both shards hold entries, and at least one placement disagrees
        # with the stable hash — so the fixture proves persisted
        # assignments (not the hash) drive placement on load.
        router, _ = golden
        assert all(len(shard.store) > 0 for shard in router.shards)
        assert any(
            router.shard_map.shard_of(name) != stable_shard(name, router.num_shards)
            for name in router.names()
        )

    def test_summary_matches(self, golden):
        router, expected = golden
        want = [dict(row) for row in expected["summary"]]
        for row in want:  # the golden predates the residency keys
            row.pop("hydrated", None)
            row.pop("resident_bytes", None)
        assert summary_metadata(router) == want

    def test_answers_match(self, golden):
        router, expected = golden
        a = np.asarray([r[0] for r in expected["ranges"]])
        b = np.asarray([r[1] for r in expected["ranges"]])
        xs = np.asarray(expected["positions"])
        qs = np.asarray(expected["levels"])
        for name, answers in expected["answers"].items():
            got = {
                "range_sum": router.range_sum(name, a, b),
                "range_mean": router.range_mean(name, a, b),
                "point_mass": router.point_mass(name, xs),
                "cdf": router.cdf(name, xs),
                "quantile": router.quantile(name, qs),
            }
            if "heavy_hitters" in answers:
                got["heavy_hitters"] = [
                    list(pair)
                    for pair in router.heavy_hitters(name, expected["phi"])
                ]
            for kind, want in answers.items():
                if name == "poly" and kind != "quantile":
                    # Same LAPACK caveat as the unsharded golden test.
                    np.testing.assert_allclose(
                        got[kind], np.asarray(want), rtol=0.0, atol=1e-9
                    )
                else:
                    np.testing.assert_array_equal(
                        got[kind], np.asarray(want), err_msg=f"{name}/{kind}"
                    )


# --------------------------------------------------------------------- #
# Sharded CLI
# --------------------------------------------------------------------- #


class TestShardedCLI:
    def test_save_inspect_load_sharded(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(
            ["save", "--n", "256", "--k", "4", "--families", "merging,wavelet,gks",
             "--shards", "2", "--store-dir", store_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "saved 3 entries" in out and "across 2 shards" in out

        assert main(["inspect", store_dir]) == 0
        out = capsys.readouterr().out
        assert "repro-synopsis-store-sharded schema=2 shards=2" in out
        assert "map merging -> shard" in out
        assert "shard-0000:" in out

        assert main(["load", store_dir]) == 0
        out = capsys.readouterr().out
        assert "on 2 shard(s)" in out and "3 prefix tables warm" in out

        assert main(["load", store_dir, "--shards", "2"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--shards asked for 3"):
            main(["load", store_dir, "--shards", "3"])
        with pytest.raises(SystemExit, match="--shards asked for 3"):
            main(["inspect", store_dir, "--shards", "3"])

    def test_serve_sharded_store_dir(self, tmp_path):
        from repro.serve.cli import serve_main

        store_dir = str(tmp_path / "store")
        assert main(
            ["save", "--n", "256", "--k", "4", "--families", "merging,wavelet",
             "--shards", "2", "--store-dir", store_dir]
        ) == 0
        commands = io.StringIO(
            "summary\nshards\nrange merging 0 100\nmean merging 0 100\n"
            "inspect merging\ncache\nquit\n"
        )
        out = io.StringIO()
        assert serve_main(
            ["--store-dir", store_dir], stdin=commands, stdout=out
        ) == 0
        text = out.getvalue()
        assert "on 2 shard(s)" in text
        assert "shard 0:" in text and "shard 1:" in text
        assert "shard=" in text  # inspect line carries the shard index
        assert "cache: hits=" in text

    def test_serve_fresh_sharded_and_save(self, tmp_path):
        from repro.serve.cli import serve_main

        target = str(tmp_path / "out")
        commands = io.StringIO(f"save {target}\nquit\n")
        out = io.StringIO()
        assert serve_main(
            ["--n", "256", "--k", "4", "--families", "merging,wavelet",
             "--shards", "3"],
            stdin=commands,
            stdout=out,
        ) == 0
        assert "on 3 shard(s)" in out.getvalue()
        assert detect_store_format(target) == "sharded"
        assert set(ShardRouter.load(target).names()) == {"merging", "wavelet"}

    def test_load_keeps_every_table_warm_on_large_stores(self, tmp_path, capsys):
        # Regression: load must size each shard's cache to the store, so
        # validation of a >32-entry store does not silently evict.
        store = SynopsisStore()
        for i in range(40):
            store.register(f"e{i:02d}", signal(32, seed=i), family="exact", k=1)
        store.save(tmp_path / "big")
        assert main(["load", str(tmp_path / "big")]) == 0
        assert "40 prefix tables warm" in capsys.readouterr().out

    def test_query_range_mean_kind(self, capsys):
        assert main(
            ["query", "--n", "256", "--kind", "range_mean", "--num-queries", "50"]
        ) == 0
        assert "range_mean x 50" in capsys.readouterr().out

    def test_serve_unsharded_dir_shard_assert(self, tmp_path):
        from repro.serve.cli import serve_main

        store_dir = str(tmp_path / "plain")
        assert main(
            ["save", "--n", "128", "--k", "2", "--families", "merging",
             "--store-dir", store_dir]
        ) == 0
        with pytest.raises(SystemExit, match="--shards asked for 2"):
            serve_main(["--store-dir", store_dir, "--shards", "2"])


# --------------------------------------------------------------------- #
# Concurrency: refresh-while-query consistency (the stress test)
# --------------------------------------------------------------------- #


def _expected_answers(synopsis, a, b):
    return PrefixTable.from_synopsis(synopsis).range_sum(a, b)


@pytest.mark.slow
class TestConcurrentRefreshWhileQuery:
    def test_every_answer_from_a_consistent_snapshot(self):
        """One thread extends streaming entries while another fires
        batched queries through the front end; every answer must equal
        the answer of the synopsis that carried exactly the reported
        (name, version) — no torn reads, no half-bumped versions."""
        rng = np.random.default_rng(100)
        router = ShardRouter(num_shards=3)
        names = ["live-a", "live-b", "live-c", "live-d"]
        history = {}
        for name in names:
            learner = StreamingHistogramLearner(n=120, k=4, refresh_factor=1.2)
            learner.extend(rng.integers(0, 120, 200))
            entry = router.register_stream(name, learner)
            history[(name, entry.version)] = entry.result.synopsis

        stop = threading.Event()
        writer_error = []

        def writer():
            # The single mutator: after each extend, record the synopsis
            # now serving each (name, version).  Entries only change inside
            # this thread, so the record is exact.
            wrng = np.random.default_rng(200)
            try:
                while not stop.is_set():
                    name = names[int(wrng.integers(len(names)))]
                    router.extend(name, wrng.integers(0, 120, 150))
                    entry = router[name]
                    history[(name, entry.version)] = entry.result.synopsis
            except Exception as exc:  # pragma: no cover - fails the test
                writer_error.append(exc)

        collected = []

        async def reader(fe):
            qrng = np.random.default_rng(300)
            for _ in range(150):
                requests = []
                args = []
                for _ in range(12):
                    name = names[int(qrng.integers(len(names)))]
                    a = qrng.integers(0, 120, 32)
                    b = qrng.integers(0, 120, 32)
                    a, b = np.minimum(a, b), np.maximum(a, b)
                    requests.append(QueryRequest("range_sum", name, (a, b)))
                    args.append((a, b))
                results = await fe.query_batch(requests)
                for result, (a, b) in zip(results, args):
                    assert result.ok, result.error
                    collected.append((result.name, result.version, a, b, result.value))

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            with AsyncServingFrontend(router) as fe:
                asyncio.run(reader(fe))
        finally:
            stop.set()
            thread.join()
        assert not writer_error, writer_error

        versions_seen = {}
        for name, version, a, b, value in collected:
            key = (name, version)
            assert key in history, f"answer from unrecorded snapshot {key}"
            np.testing.assert_array_equal(
                value,
                _expected_answers(history[key], a, b),
                err_msg=f"torn read at {key}",
            )
            versions_seen.setdefault(name, set()).add(version)
        # The stress is only meaningful if refreshes actually interleaved
        # with queries: at least one entry must have served >1 version.
        assert any(len(v) > 1 for v in versions_seen.values()), (
            "no version ever advanced during the read phase; "
            "stress test did not stress"
        )


# --------------------------------------------------------------------- #
# Skew-aware placement: sticky reshard, live migration, read replication
# --------------------------------------------------------------------- #


class TestStickyReshard:
    def test_growing_moves_nothing(self, pair):
        """Satellite: reshard must preserve sticky assignments that still
        name a live shard — growing the count is zero-movement."""
        _, router = pair
        before = router.shard_map.assignments()
        wide = router.reshard(8)
        assert wide.shard_map.assignments() == before
        migrated = router.registry.get("router_entries_migrated_total")
        assert migrated.value == 0

    def test_deliberate_placement_survives_reshard(self, pair):
        _, router = pair
        name = NAMES[0]
        target = (router.shard_map.shard_of(name) + 1) % 4
        router.migrate(name, target)
        wide = router.reshard(6)
        assert wide.shard_map.shard_of(name) == target

    def test_shrinking_moves_only_the_remainder(self, pair):
        _, router = pair
        before = router.shard_map.assignments()
        survivors = {n for n, s in before.items() if s < 2}
        narrow = router.reshard(2)
        after = narrow.shard_map.assignments()
        for name in survivors:
            assert after[name] == before[name]
        for name in set(before) - survivors:
            assert after[name] == stable_shard(name, 2)
        migrated = router.registry.get("router_entries_migrated_total")
        assert migrated.value == len(before) - len(survivors)

    def test_replica_sets_survive_reshard(self, pair):
        _, router = pair
        name = NAMES[0]
        others = [i for i in range(4) if i != router.shard_map.shard_of(name)]
        router.replicate(name, others[:2])
        wide = router.reshard(6)
        assert sorted(wide.replicas_of(name)) == sorted(others[:2])
        # Shrinking drops replicas whose shard disappeared.
        narrow = router.reshard(2)
        kept = narrow.replicas_of(name)
        assert all(i < 2 for i in kept)


class TestMigrate:
    def test_moves_entry_and_map_and_floor(self, pair):
        engine, router = pair
        name = NAMES[0]
        source = router.shard_map.shard_of(name)
        target = (source + 1) % 4
        version = router[name].version
        moved = router.migrate(name, target)
        assert moved == [name]
        assert router.shard_map.shard_of(name) == target
        assert name not in router.shards[source].store
        assert router[name].version == version
        # The version floor moved with the entry: re-registering after a
        # remove never reissues a served version.
        router.remove(name)
        entry = router.register(name, signal(seed=77), family="merging", k=5)
        assert entry.version == version + 1

    def test_answers_identical_after_migrate(self, pair):
        engine, router = pair
        name = NAMES[1]
        router.migrate(name, (router.shard_map.shard_of(name) + 2) % 4)
        rng = np.random.default_rng(4)
        a = rng.integers(0, 240, 40)
        b = rng.integers(0, 240, 40)
        a, b = np.minimum(a, b), np.maximum(a, b)
        np.testing.assert_array_equal(
            router.range_sum(name, a, b), engine.range_sum(name, a, b)
        )

    def test_same_shard_is_noop(self, pair):
        _, router = pair
        name = NAMES[2]
        here = router.shard_map.shard_of(name)
        assert router.migrate(name, here) == []
        assert router.registry.get("router_entries_migrated_total").value == 0

    def test_unknown_name_and_bad_shard(self, pair):
        _, router = pair
        with pytest.raises(KeyError):
            router.migrate("nope", 0)
        with pytest.raises(ValueError):
            router.migrate(NAMES[0], 4)

    def test_batch_migrate_counts(self, pair):
        _, router = pair
        names = [n for n in NAMES if router.shard_map.shard_of(n) != 0][:3]
        moved = router.migrate(names, 0)
        assert moved == names
        counter = router.registry.get("router_entries_migrated_total")
        assert counter.value == len(names)

    def test_migrating_onto_replica_promotes(self, pair):
        _, router = pair
        name = NAMES[3]
        source = router.shard_map.shard_of(name)
        target = (source + 1) % 4
        router.replicate(name, target)
        router.migrate(name, target)
        assert router.shard_map.shard_of(name) == target
        assert router.replicas_of(name) == []
        assert name not in router.shards[source].store


class TestReplication:
    def test_replicated_reads_round_robin_with_parity(self, pair):
        engine, router = pair
        name = NAMES[0]
        others = [i for i in range(4) if i != router.shard_map.shard_of(name)]
        assert router.replicate(name, others) == others
        rng = np.random.default_rng(5)
        a = rng.integers(0, 240, 16)
        b = rng.integers(0, 240, 16)
        a, b = np.minimum(a, b), np.maximum(a, b)
        expected = engine.range_sum(name, a, b)
        with AsyncServingFrontend(router) as fe:
            results = fe.serve(
                [QueryRequest("range_sum", name, (a, b)) for _ in range(8)]
            )
        for result in results:
            assert result.ok, result.error
            np.testing.assert_array_equal(result.value, expected)
        # The round-robin cursor visited every placement at least once.
        reads = router.registry.get("frontend_replica_reads_total")
        assert reads.value >= len(others)

    def test_replicate_skips_primary_and_duplicates(self, pair):
        _, router = pair
        name = NAMES[1]
        primary = router.shard_map.shard_of(name)
        other = (primary + 1) % 4
        assert router.replicate(name, [primary, other, other]) == [other]
        assert router.replicas_of(name) == [other]
        assert (
            router.registry.get("router_entries_replicated_total").value == 1
        )

    def test_writes_propagate_to_replicas(self):
        router = ShardRouter(num_shards=3)
        rng = np.random.default_rng(6)
        learner = StreamingHistogramLearner(n=120, k=4, refresh_factor=1.1)
        learner.extend(rng.integers(0, 120, 400))
        router.register_stream("live", learner)
        primary = router.shard_map.shard_of("live")
        replica = (primary + 1) % 3
        router.replicate("live", replica)
        before = router["live"].version
        router.extend("live", rng.integers(0, 120, 4000))
        after = router["live"].version
        assert after > before
        version, _table = router.shards[replica].engine.table_versioned("live")
        assert version == after

    def test_stale_replica_falls_back_to_primary(self):
        """A refresh that bypasses the router's propagation (the window
        between a primary write and its fan-out) must not serve stale:
        the front end's version check recomputes on the primary."""
        router = ShardRouter(num_shards=2)
        rng = np.random.default_rng(7)
        learner = StreamingHistogramLearner(n=120, k=4, refresh_factor=1.1)
        learner.extend(rng.integers(0, 120, 400))
        router.register_stream("live", learner)
        primary = router.shard_map.shard_of("live")
        replica = 1 - primary
        router.replicate("live", replica)
        # Write primary-only: extend the learner and refresh through the
        # store, NOT through the router (no propagation).
        learner.extend(rng.integers(0, 120, 4000))
        fresh = router.shards[primary].store.refresh("live")
        stale_version, _ = router.shards[replica].engine.table_versioned("live")
        assert stale_version < fresh.version
        with AsyncServingFrontend(router) as fe:
            results = fe.serve(
                [QueryRequest("range_sum", "live", (0, 119)) for _ in range(6)]
            )
        for result in results:
            assert result.ok, result.error
            assert result.version == fresh.version
        fallbacks = router.registry.get(
            "frontend_replica_stale_fallbacks_total"
        )
        assert fallbacks.value >= 1

    def test_drop_replica(self, pair):
        _, router = pair
        name = NAMES[2]
        other = (router.shard_map.shard_of(name) + 1) % 4
        router.replicate(name, other)
        assert router.drop_replica(name, other) is True
        assert router.drop_replica(name, other) is False
        assert router.replicas_of(name) == []
        assert name not in router.shards[other].store
        assert (
            router.registry.get("router_replicas_dropped_total").value == 1
        )

    def test_remove_cleans_replicas(self, pair):
        _, router = pair
        name = NAMES[4]
        other = (router.shard_map.shard_of(name) + 1) % 4
        router.replicate(name, other)
        router.remove(name)
        assert router.replicas_of(name) == []
        assert name not in router.shards[other].store

    def test_replicas_round_trip_persistence(self, pair, tmp_path):
        engine, router = pair
        name = NAMES[0]
        others = [i for i in range(4) if i != router.shard_map.shard_of(name)]
        router.replicate(name, others[:2])
        save_sharded(router, tmp_path / "replicated")
        manifest = read_sharded_manifest(tmp_path / "replicated")
        # Replica sets persist at the pre-cohort schema (no cohorts here).
        assert manifest["schema"] == SHARDED_SCHEMA_VERSION - 1
        assert sorted(manifest["shard_map"]["replicas"][name]) == sorted(
            others[:2]
        )
        # Replica copies stay out of the shard directories; the primary
        # is the one persisted copy.
        for index in others[:2]:
            shard_manifest = read_manifest_names(
                tmp_path / "replicated" / f"shard-{index:04d}"
            )
            assert name not in shard_manifest
        loaded = load_sharded(tmp_path / "replicated")
        assert sorted(loaded.replicas_of(name)) == sorted(others[:2])
        for index in others[:2]:
            assert name in loaded.shards[index].store
        rng = np.random.default_rng(9)
        a = rng.integers(0, 240, 32)
        b = rng.integers(0, 240, 32)
        a, b = np.minimum(a, b), np.maximum(a, b)
        np.testing.assert_array_equal(
            loaded.range_sum(name, a, b), engine.range_sum(name, a, b)
        )

    def test_schema1_map_still_loads(self):
        """Back-compat: a schema-1 shard-map payload (no replicas, no
        map_version) must load with empty replica sets."""
        payload = {
            "kind": "shard_map",
            "schema": 1,
            "num_shards": 3,
            "assignments": {"a": 1, "b": 2},
        }
        shard_map = ShardMap.from_dict(payload)
        assert shard_map.shard_of("a") == 1
        assert shard_map.replica_sets() == {}
        assert shard_map.version == 0


def read_manifest_names(shard_dir):
    """Entry names recorded in one shard directory's manifest(s)."""
    from repro.serve.persistence import iter_manifest_entries

    return [str(rec["name"]) for rec in iter_manifest_entries(shard_dir)]


@pytest.mark.slow
class TestMigrationUnderLoad:
    def test_zero_dropped_queries_and_consistent_snapshots(self):
        """Satellite: a hot entry is queried continuously from the front
        end while migrate() bounces it between shards; every answer must
        succeed and match the synopsis of its reported (name, version)."""
        rng = np.random.default_rng(11)
        router = ShardRouter(num_shards=4)
        names = ["hot", "warm-1", "warm-2"]
        history = {}
        for name in names:
            learner = StreamingHistogramLearner(n=120, k=4, refresh_factor=1.2)
            learner.extend(rng.integers(0, 120, 300))
            entry = router.register_stream(name, learner)
            history[(name, entry.version)] = entry.result.synopsis

        stop = threading.Event()
        mover_error = []
        moves = [0]

        def mover():
            # Bounce the hot entry across all four shards, and keep a
            # second writer-style mutation (refresh) in play so versions
            # advance during the storm.
            mrng = np.random.default_rng(12)
            try:
                while not stop.is_set():
                    target = int(mrng.integers(4))
                    if router.migrate("hot", target):
                        moves[0] += 1
                    if mrng.random() < 0.25:
                        router.extend(
                            "hot", mrng.integers(0, 120, 200)
                        )
                        entry = router["hot"]
                        history[(entry.name, entry.version)] = (
                            entry.result.synopsis
                        )
            except Exception as exc:  # pragma: no cover - fails the test
                mover_error.append(exc)

        collected = []

        async def reader(fe):
            qrng = np.random.default_rng(13)
            for _ in range(200):
                requests = []
                args = []
                for _ in range(10):
                    name = "hot" if qrng.random() < 0.8 else (
                        names[1 + int(qrng.integers(2))]
                    )
                    a = qrng.integers(0, 120, 16)
                    b = qrng.integers(0, 120, 16)
                    a, b = np.minimum(a, b), np.maximum(a, b)
                    requests.append(QueryRequest("range_sum", name, (a, b)))
                    args.append((a, b))
                results = await fe.query_batch(requests)
                for result, (a, b) in zip(results, args):
                    collected.append(
                        (result.name, result.version, a, b, result.value,
                         result.error)
                    )

        thread = threading.Thread(target=mover)
        thread.start()
        try:
            with AsyncServingFrontend(router) as fe:
                asyncio.run(reader(fe))
        finally:
            stop.set()
            thread.join()
        assert not mover_error, mover_error
        assert moves[0] > 0, "no migration ever happened; test did not stress"

        dropped = [row for row in collected if row[5] is not None]
        assert not dropped, f"{len(dropped)} queries dropped: {dropped[:3]}"
        for name, version, a, b, value, _error in collected:
            key = (name, version)
            assert key in history, f"answer from unrecorded snapshot {key}"
            np.testing.assert_array_equal(
                value,
                _expected_answers(history[key], a, b),
                err_msg=f"inconsistent answer at {key}",
            )
