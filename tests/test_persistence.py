"""Tests for durable synopsis stores (repro.serve.persistence).

Covers the universal serialization protocol (every family round-trips
through ``to_dict``/``from_dict`` with identical query answers), store
``save``/``load`` (versions, metadata, streaming staleness), the
checked-in golden fixture guarding the on-disk schema, and crash safety
(corrupted stores fail loudly; failed saves leave the old store intact).
"""

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BuildResult,
    Histogram,
    QueryEngine,
    SparseFunction,
    StoreCorruptionError,
    StreamingHistogramLearner,
    SynopsisStore,
    build_synopsis,
    load_store,
    save_store,
    synopsis_from_dict,
    synopsis_to_dict,
)
from repro.__main__ import main
from repro.serve.engine import PrefixTable
from repro.serve.persistence import (
    NPZ_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    read_manifest,
)

from helpers import (
    histograms,
    piecewise_polynomials,
    positive_dense_arrays,
    sparse_functions,
    summary_metadata,
    synopsis_objects,
    wavelet_synopses,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def table_answers(synopsis) -> dict:
    """Every query kind over the full domain of a synopsis's prefix table."""
    table = PrefixTable.from_synopsis(synopsis)
    n = table.n
    xs = np.arange(n)
    out = {
        "integral": table.integral(np.arange(n + 1)),
        "range_sum": table.range_sum(np.zeros(n, dtype=np.int64), xs),
        "point_mass": table.point_mass(xs),
    }
    if table.total_mass > 1e-9:
        out["cdf"] = table.cdf(xs)
        try:
            out["quantile"] = table.quantile(np.linspace(0.0, 1.0, 21))
        except ValueError:
            out["quantile"] = "raises"  # non-monotone reconstruction
    return out


def assert_same_answers(original, clone) -> None:
    expected = table_answers(original)
    got = table_answers(clone)
    assert expected.keys() == got.keys()
    for kind, answer in expected.items():
        if isinstance(answer, str):
            assert got[kind] == answer
        else:
            np.testing.assert_array_equal(got[kind], answer, err_msg=kind)


# --------------------------------------------------------------------- #
# Universal serialization: every family round-trips bitwise
# --------------------------------------------------------------------- #


class TestSynopsisRoundTrip:
    @given(histograms())
    @settings(max_examples=40, deadline=None)
    def test_histogram(self, synopsis):
        clone = synopsis_from_dict(json.loads(json.dumps(synopsis_to_dict(synopsis))))
        assert isinstance(clone, Histogram)
        assert clone == synopsis
        assert_same_answers(synopsis, clone)

    @given(wavelet_synopses())
    @settings(max_examples=40, deadline=None)
    def test_wavelet(self, synopsis):
        clone = synopsis_from_dict(json.loads(json.dumps(synopsis_to_dict(synopsis))))
        np.testing.assert_array_equal(clone.indices, synopsis.indices)
        np.testing.assert_array_equal(clone.coefficients, synopsis.coefficients)
        assert clone.error == synopsis.error
        assert_same_answers(synopsis, clone)

    @given(piecewise_polynomials())
    @settings(max_examples=40, deadline=None)
    def test_piecewise_polynomial(self, synopsis):
        clone = synopsis_from_dict(json.loads(json.dumps(synopsis_to_dict(synopsis))))
        assert clone.num_pieces == synopsis.num_pieces
        for mine, theirs in zip(synopsis.fits, clone.fits):
            assert (mine.a, mine.b, mine.degree) == (theirs.a, theirs.b, theirs.degree)
            np.testing.assert_array_equal(mine.coefficients, theirs.coefficients)
        assert_same_answers(synopsis, clone)

    @given(sparse_functions())
    @settings(max_examples=40, deadline=None)
    def test_sparse(self, synopsis):
        clone = synopsis_from_dict(json.loads(json.dumps(synopsis_to_dict(synopsis))))
        assert clone.allclose(synopsis, rtol=0.0, atol=0.0)
        assert_same_answers(synopsis, clone)

    @given(synopsis_objects())
    @settings(max_examples=40, deadline=None)
    def test_dense_reconstruction_identical(self, synopsis):
        clone = synopsis_from_dict(synopsis_to_dict(synopsis))
        assert type(clone) is type(synopsis)
        np.testing.assert_array_equal(clone.to_dense(), synopsis.to_dense())

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown synopsis kind"):
            synopsis_from_dict({"kind": "martian", "n": 4})
        with pytest.raises(TypeError):
            synopsis_from_dict("not a dict")
        with pytest.raises(TypeError, match="unsupported synopsis type"):
            synopsis_to_dict(object())

    def test_wrong_kind_routing_rejected(self):
        # A payload routed to the wrong class fails its tag check ...
        payload = Histogram.from_dense(np.ones(4)).to_dict()
        with pytest.raises(ValueError, match="does not match"):
            SparseFunction.from_dict(payload)
        # ... and a mislabeled payload fails the target's field validation.
        payload["kind"] = "wavelet"
        with pytest.raises((KeyError, ValueError)):
            synopsis_from_dict(payload)

    def test_future_schema_rejected(self):
        payload = SparseFunction(5, [1], [2.0]).to_dict()
        payload["schema"] = STORE_SCHEMA_VERSION + 99
        with pytest.raises(ValueError, match="newer"):
            synopsis_from_dict(payload)

    def test_legacy_untagged_histogram_payload_loads(self):
        hist = Histogram.from_dense(np.asarray([1.0, 1.0, 3.0]))
        payload = hist.to_dict()
        del payload["kind"], payload["schema"]
        assert Histogram.from_dict(payload) == hist


# --------------------------------------------------------------------- #
# BuildResult metadata round-trip (the describe() parity fix)
# --------------------------------------------------------------------- #


class TestBuildResultRoundTrip:
    def test_describe_survives_serialization(self):
        values = ((np.arange(128) * 13) % 31 + 1) / 31.0
        result = build_synopsis(values, "merging", 5, delta=500.0, gamma=2.0)
        clone = BuildResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.describe() == result.describe()
        assert clone.options == {"delta": 500.0, "gamma": 2.0}
        np.testing.assert_array_equal(
            clone.synopsis.to_dense(), result.synopsis.to_dense()
        )

    def test_metadata_only_payload_revives_unhydrated(self):
        values = np.ones(32)
        result = build_synopsis(values, "merging", 2)
        clone = BuildResult.from_dict(result.to_dict(include_synopsis=False))
        assert clone.synopsis is None
        assert clone.describe() == result.describe()

    def test_pieces_cached_in_metadata(self):
        result = build_synopsis(np.asarray([1.0, 1.0, 5.0, 5.0]), "exact", 1)
        assert result.pieces == result.describe()["pieces"] == 2


# --------------------------------------------------------------------- #
# Store save/load
# --------------------------------------------------------------------- #


def small_signal(n=200, seed=3):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(1.0, 0.5, n)) + 1e-6


@pytest.fixture
def populated_store():
    values = small_signal()
    store = SynopsisStore()
    store.register("merging", values, family="merging", k=5, delta=500.0)
    store.register("wavelet", values, family="wavelet", k=4)
    store.register("poly", values, family="poly", k=3, degree=2)
    store.register("gks", values, family="gks", k=4)
    learner = StreamingHistogramLearner(n=100, k=3)
    learner.extend(np.random.default_rng(5).integers(0, 100, 600))
    store.register_stream("live", learner)
    store.register("bumped", values, family="fast", k=4)
    store.register("bumped", values, family="fast", k=6)  # version 1
    return store


class TestStoreSaveLoad:
    def test_all_query_kinds_bitwise_identical(self, populated_store, tmp_path):
        store = populated_store
        engine = QueryEngine(store)
        rng = np.random.default_rng(7)
        names = store.names()
        queries = {}
        for name in names:
            n = store[name].result.n
            a = rng.integers(0, n, 64)
            b = rng.integers(0, n, 64)
            a, b = np.minimum(a, b), np.maximum(a, b)
            x = rng.integers(0, n, 64)
            q = rng.random(32)
            queries[name] = (a, b, x, q)
        before = {
            name: (
                engine.range_sum(name, a, b),
                engine.point_mass(name, x),
                engine.cdf(name, x),
                engine.quantile(name, q),
                engine.top_k_buckets(name, 3),
            )
            for name, (a, b, x, q) in queries.items()
        }

        store.save(tmp_path / "store")
        loaded = SynopsisStore.load(tmp_path / "store")
        fresh = QueryEngine(loaded)
        for name, (a, b, x, q) in queries.items():
            after = (
                fresh.range_sum(name, a, b),
                fresh.point_mass(name, x),
                fresh.cdf(name, x),
                fresh.quantile(name, q),
                fresh.top_k_buckets(name, 3),
            )
            for kind, (want, got) in enumerate(zip(before[name], after)):
                np.testing.assert_array_equal(
                    np.asarray(got, dtype=object if kind == 4 else None),
                    np.asarray(want, dtype=object if kind == 4 else None),
                    err_msg=f"{name} query kind {kind}",
                )

    def test_summary_preserved_lazy_and_hydrated(self, populated_store, tmp_path):
        expected = summary_metadata(populated_store)
        populated_store.save(tmp_path / "store")
        loaded = SynopsisStore.load(tmp_path / "store")
        assert summary_metadata(loaded) == expected  # before any payload read
        QueryEngine(loaded).warm()
        assert all(loaded[name].is_hydrated for name in loaded.names())
        assert summary_metadata(loaded) == expected  # hydrated, still equal

    def test_versions_and_floors_preserved(self, populated_store, tmp_path):
        populated_store.remove("gks")  # floor must survive for the name
        populated_store.save(tmp_path / "store")
        loaded = SynopsisStore.load(tmp_path / "store")
        assert loaded["bumped"].version == 1
        entry = loaded.register("gks", small_signal(), family="gks", k=4)
        assert entry.version == 1  # never reissue version 0
        loaded.remove("bumped")
        entry = loaded.register("bumped", small_signal(), family="fast", k=4)
        assert entry.version == 2

    def test_lazy_is_lazy_eager_is_eager(self, populated_store, tmp_path):
        populated_store.save(tmp_path / "store")
        lazy = SynopsisStore.load(tmp_path / "store")
        assert not any(lazy[name].is_hydrated for name in lazy.names())
        QueryEngine(lazy).range_sum("merging", 0, 10)
        assert lazy["merging"].is_hydrated
        assert not lazy["wavelet"].is_hydrated
        eager = SynopsisStore.load(tmp_path / "store", lazy=False)
        assert all(eager[name].is_hydrated for name in eager.names())

    def test_streaming_staleness_resumes_identically(self, tmp_path):
        rng = np.random.default_rng(11)
        samples = [rng.integers(0, 80, size) for size in (400, 100, 900, 2000)]

        def run(store):
            versions = []
            for batch in samples[1:]:
                store.extend("live", batch)
                versions.append(store["live"].version)
            return versions

        def fresh_store():
            learner = StreamingHistogramLearner(n=80, k=3)
            learner.extend(samples[0])
            store = SynopsisStore()
            store.register_stream("live", learner)
            return store

        control = fresh_store()
        persisted = fresh_store()
        persisted.save(tmp_path / "store")
        loaded = SynopsisStore.load(tmp_path / "store")
        entry = loaded["live"]
        assert not entry.is_hydrated
        assert entry.describe()["samples_seen"] == 400
        assert run(loaded) == run(control)
        assert loaded["live"].learner.samples_seen == control["live"].learner.samples_seen
        assert loaded["live"].built_at_samples == control["live"].built_at_samples

    def test_learner_cached_histogram_round_trips(self):
        # The cached build and its watermark survive, so histogram() and
        # the refresh cadence are identical after a round trip (regression).
        rng = np.random.default_rng(21)
        learner = StreamingHistogramLearner(n=60, k=3)
        learner.extend(rng.integers(0, 60, 400))
        cached = learner.histogram()  # cache at m=400
        learner.extend(rng.integers(0, 60, 300))  # 700 < 2*400: not stale
        revived = StreamingHistogramLearner.from_state(
            json.loads(json.dumps(learner.state_dict()))
        )
        assert revived.histogram() == cached == learner.histogram()
        for extra in (rng.integers(0, 60, 50), rng.integers(0, 60, 100)):
            learner.extend(extra), revived.extend(extra)
            assert revived.histogram() == learner.histogram()

    def test_summary_mutation_does_not_corrupt_frozen_meta(
        self, populated_store, tmp_path
    ):
        populated_store.save(tmp_path / "store")
        loaded = SynopsisStore.load(tmp_path / "store")
        meta = loaded["merging"].describe()
        meta["options"]["delta"] = -1.0
        meta["family"] = "tampered"
        assert loaded["merging"].describe()["options"]["delta"] == 500.0
        assert loaded["merging"].describe()["family"] == "merging"

    def test_save_of_lazy_store_is_faithful_copy(self, populated_store, tmp_path):
        populated_store.save(tmp_path / "a")
        loaded = SynopsisStore.load(tmp_path / "a")
        loaded.save(tmp_path / "b")  # hydrates on demand while copying
        copy = SynopsisStore.load(tmp_path / "b")
        assert summary_metadata(copy) == summary_metadata(populated_store)

    def test_save_overwrites_only_stores(self, populated_store, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "data.txt").write_text("do not clobber")
        with pytest.raises(ValueError, match="not a\n?.*synopsis store"):
            populated_store.save(target)
        assert (target / "data.txt").read_text() == "do not clobber"
        empty = tmp_path / "empty"
        empty.mkdir()
        populated_store.save(empty)  # empty directories are fair game
        assert set(SynopsisStore.load(empty).names()) == set(populated_store.names())

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["merging", "wavelet", "exact", "hierarchical"]),
                positive_dense_arrays(min_size=2, max_size=24),
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=0, max_value=2),  # extra version bumps
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_random_store_round_trips(self, specs):
        store = SynopsisStore()
        for index, (family, values, k, bumps) in enumerate(specs):
            name = f"entry{index}"
            for _ in range(bumps + 1):
                store.register(name, values, family=family, k=k)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "store")
            save_store(store, path)
            loaded = load_store(path)
            assert summary_metadata(loaded) == summary_metadata(store)
            engine = QueryEngine(loaded)
            reference = QueryEngine(store)
            for name in store.names():
                n = store[name].result.n
                np.testing.assert_array_equal(
                    engine.range_sum(name, np.zeros(n, dtype=np.int64), np.arange(n)),
                    reference.range_sum(name, np.zeros(n, dtype=np.int64), np.arange(n)),
                )


class TestSurvivesNewProcess:
    """The acceptance criterion: one entry per family, save, fresh process,
    load — every query kind answers bitwise-identically."""

    def test_every_family_round_trips_across_processes(self, tmp_path):
        import subprocess
        import sys

        from repro import SYNOPSIS_FAMILIES

        signal = ((np.arange(150) * 37) % 53 + 1) / 53.0
        store = SynopsisStore()
        for family in SYNOPSIS_FAMILIES:
            store.register(family, signal, family=family, k=4)
        engine = QueryEngine(store)

        script = r"""
import json, sys
import numpy as np
from repro import QueryEngine, SynopsisStore

store = SynopsisStore.load(sys.argv[1])
engine = QueryEngine(store)
out = {}
for name in store.names():
    out[name] = {
        "range_sum": engine.range_sum(name, np.asarray([0, 10, 75]),
                                      np.asarray([149, 60, 149])).tolist(),
        "point_mass": engine.point_mass(name, np.asarray([0, 74, 149])).tolist(),
        "cdf": engine.cdf(name, np.asarray([0, 74, 149])).tolist(),
        "quantile": engine.quantile(name, np.asarray([0.1, 0.5, 0.9])).tolist(),
        "top_k": engine.top_k_buckets(name, 2),
        "meta": store[name].describe(),
    }
print(json.dumps(out))
"""
        expected = {}
        for name in store.names():
            expected[name] = {
                "range_sum": engine.range_sum(
                    name, np.asarray([0, 10, 75]), np.asarray([149, 60, 149])
                ).tolist(),
                "point_mass": engine.point_mass(name, np.asarray([0, 74, 149])).tolist(),
                "cdf": engine.cdf(name, np.asarray([0, 74, 149])).tolist(),
                "quantile": engine.quantile(name, np.asarray([0.1, 0.5, 0.9])).tolist(),
                "top_k": [list(b) for b in engine.top_k_buckets(name, 2)],
                "meta": store[name].describe(),
            }

        store.save(tmp_path / "store")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "store")],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        got = json.loads(proc.stdout)
        assert set(got) == set(expected)
        for name in expected:
            for kind in ("range_sum", "point_mass", "cdf", "quantile"):
                assert got[name][kind] == expected[name][kind], (name, kind)
            assert [list(b) for b in got[name]["top_k"]] == expected[name]["top_k"]
            assert got[name]["meta"] == expected[name]["meta"]


# --------------------------------------------------------------------- #
# Golden fixture: the on-disk schema must not drift silently
# --------------------------------------------------------------------- #


class TestGoldenFixture:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(FIXTURES / "golden_expected.json", "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        store = SynopsisStore.load(FIXTURES / "golden_store")
        return store, expected

    def test_schema_version_matches(self):
        # The npz golden fixture is pinned at the legacy schema; the
        # schema-4 mmap golden lives in test_mmap.py.
        manifest = read_manifest(FIXTURES / "golden_store")
        assert manifest["schema"] == NPZ_SCHEMA_VERSION, (
            "npz schema version bumped: regenerate the golden fixture with "
            "tests/fixtures/make_golden_store.py and commit both files"
        )

    def test_summary_matches(self, golden):
        store, expected = golden
        want = [dict(row) for row in expected["summary"]]
        for row in want:  # the golden predates the residency keys
            row.pop("hydrated", None)
            row.pop("resident_bytes", None)
        assert summary_metadata(store) == want

    def test_answers_match(self, golden):
        store, expected = golden
        engine = QueryEngine(store)
        a = np.asarray([r[0] for r in expected["ranges"]])
        b = np.asarray([r[1] for r in expected["ranges"]])
        xs = np.asarray(expected["positions"])
        qs = np.asarray(expected["levels"])
        for name, answers in expected["answers"].items():
            got = {
                "range_sum": engine.range_sum(name, a, b),
                "range_mean": engine.range_mean(name, a, b),
                "point_mass": engine.point_mass(name, xs),
                "cdf": engine.cdf(name, xs),
                "quantile": engine.quantile(name, qs),
            }
            if "heavy_hitters" in answers:
                got["heavy_hitters"] = [
                    list(pair)
                    for pair in engine.heavy_hitters(name, expected["phi"])
                ]
            for kind, want in answers.items():
                if name == "poly" and kind != "quantile":
                    # The poly prefix table is rebuilt through a least-squares
                    # interpolation whose last bits may vary across LAPACK
                    # builds; everything else must be byte-exact.
                    np.testing.assert_allclose(
                        got[kind], np.asarray(want), rtol=0.0, atol=1e-9
                    )
                else:
                    np.testing.assert_array_equal(
                        got[kind], np.asarray(want), err_msg=f"{name}/{kind}"
                    )

    def test_streaming_entry_resumes(self, golden):
        store, expected = golden
        entry = store["live"]
        entry.hydrate()
        assert entry.learner.samples_seen == 500
        assert entry.built_at_samples == 500


# --------------------------------------------------------------------- #
# Crash safety
# --------------------------------------------------------------------- #


@pytest.fixture
def saved_store(tmp_path):
    # Saved in the legacy npz layout: this class exercises the npz compat
    # reader's corruption handling (the mmap layout's is in test_mmap.py).
    values = small_signal(120, seed=9)
    store = SynopsisStore()
    store.register("a", values, family="merging", k=4)
    store.register("b", values, family="wavelet", k=4)
    path = tmp_path / "store"
    store.save(path, layout="npz")
    return store, path


class TestCorruption:
    def test_truncated_manifest(self, saved_store):
        _, path = saved_store
        manifest = path / "manifest.json"
        manifest.write_text(manifest.read_text()[:40])
        with pytest.raises(StoreCorruptionError, match="unreadable store manifest"):
            load_store(path)

    def test_missing_payload(self, saved_store):
        _, path = saved_store
        (path / "entry-0001.npz").unlink()
        with pytest.raises(StoreCorruptionError, match="missing entry payload"):
            load_store(path)  # even the lazy load fails up front

    def test_garbage_payload(self, saved_store):
        _, path = saved_store
        (path / "entry-0000.npz").write_bytes(b"definitely not a zip")
        with pytest.raises(StoreCorruptionError, match="truncated or not an npz"):
            load_store(path)

    def test_wrong_format_manifest(self, saved_store):
        _, path = saved_store
        (path / "manifest.json").write_text(json.dumps({"format": "parquet"}))
        with pytest.raises(StoreCorruptionError, match="manifest"):
            load_store(path)

    def test_future_store_schema(self, saved_store):
        _, path = saved_store
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema"] = STORE_SCHEMA_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptionError, match="newer than"):
            load_store(path)

    def test_legacy_schema_2_store_still_loads(self, saved_store):
        """A pre-windowed manifest (schema 2, no windowed fields) must load."""
        store, path = saved_store
        manifest = json.loads((path / "manifest.json").read_text())
        assert all("windowed" not in r for r in manifest["entries"])
        manifest["schema"] = 2
        (path / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_store(path)
        assert summary_metadata(loaded) == summary_metadata(store)

    def test_mismatched_payload_content(self, saved_store):
        # Swap the two entries' payload files: manifest and payload disagree.
        _, path = saved_store
        a, b = path / "entry-0000.npz", path / "entry-0001.npz"
        tmp = path / "swap.npz"
        a.rename(tmp), b.rename(a), tmp.rename(b)
        loaded = load_store(path)  # both files are valid npz: lazy load passes
        with pytest.raises(StoreCorruptionError):
            QueryEngine(loaded).range_sum("a", 0, 10)

    def test_corrupt_entry_raises_again_not_half_hydrated(self, saved_store):
        _, path = saved_store
        with np.load(path / "entry-0000.npz") as npz:
            arrays = {key: npz[key] for key in npz.files}
        arrays["__skeleton__"] = np.asarray(json.dumps({"synopsis": {"kind": "martian"}}))
        np.savez_compressed(path / "entry-0000.npz", **arrays)
        loaded = load_store(path)
        engine = QueryEngine(loaded)
        for _ in range(2):  # same clear error every time, never half-hydrated
            with pytest.raises(StoreCorruptionError, match="entry payload"):
                engine.range_sum("a", 0, 10)
        assert not loaded["a"].is_hydrated

    def test_missing_array_in_payload(self, saved_store):
        # Zip-valid npz whose skeleton references an array that is gone:
        # must be corruption, not a bare KeyError (regression).
        _, path = saved_store
        with np.load(path / "entry-0000.npz") as npz:
            arrays = {key: npz[key] for key in npz.files}
        arrays.pop("payload.synopsis.rights")
        np.savez_compressed(path / "entry-0000.npz", **arrays)
        with pytest.raises(StoreCorruptionError, match="unreadable entry payload"):
            load_store(path, lazy=False)

    def test_serve_loop_survives_corrupt_entry(self, saved_store):
        # A hydration failure mid-session prints an error line and keeps
        # serving the healthy entries (regression: loop used to die).
        import io

        from repro.serve.cli import serve_main

        _, path = saved_store
        with np.load(path / "entry-0000.npz") as npz:
            arrays = {key: npz[key] for key in npz.files}
        arrays["__skeleton__"] = np.asarray(json.dumps({"synopsis": {"kind": "bad"}}))
        np.savez_compressed(path / "entry-0000.npz", **arrays)
        out = io.StringIO()
        commands = io.StringIO("range a 0 10\nrange b 0 10\nquit\n")
        assert serve_main(
            ["--store-dir", str(path)], stdin=commands, stdout=out
        ) == 0
        text = out.getvalue()
        assert "error:" in text and "entry payload" in text
        assert len(text.splitlines()) >= 3  # banner, error, then a real answer

    def test_corrupt_manifest_fields(self, saved_store):
        # Parseable JSON with rotted values must still be corruption, not a
        # raw ValueError/AttributeError (regression).
        _, path = saved_store
        good = json.loads((path / "manifest.json").read_text())

        bad = json.loads(json.dumps(good))
        bad["entries"][0]["built_at_samples"] = "??"
        (path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(StoreCorruptionError, match="invalid manifest entry"):
            load_store(path)

        bad = json.loads(json.dumps(good))
        bad["last_versions"] = {"a": "newest"}
        (path / "manifest.json").write_text(json.dumps(bad))
        with pytest.raises(StoreCorruptionError, match="invalid last_versions"):
            load_store(path)

    def test_payload_path_confined_to_store(self, saved_store, tmp_path):
        # A tampered payload reference must not escape the store directory.
        _, path = saved_store
        outside = tmp_path / "outside.npz"
        shutil.copy(path / "entry-0000.npz", outside)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["entries"][0]["payload"] = "../outside.npz"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptionError, match="invalid entry payload name"):
            load_store(path)

    def test_unhydrated_result_to_dict_raises_clearly(self, saved_store):
        _, path = saved_store
        loaded = load_store(path)
        with pytest.raises(ValueError, match="unhydrated"):
            loaded["a"].result.to_dict()
        assert loaded["a"].result.to_dict(include_synopsis=False)["family"] == "merging"

    def test_bitflipped_payload_is_corruption(self, saved_store):
        # A bit-flip inside the deflate stream keeps zipfile.is_zipfile
        # happy but must still surface as StoreCorruptionError (regression:
        # zlib.error used to escape raw).
        _, path = saved_store
        payload = path / "entry-0000.npz"
        raw = bytearray(payload.read_bytes())
        mid = len(raw) // 2
        for offset in range(mid, mid + 8):
            raw[offset] ^= 0xFF
        payload.write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptionError):
            load_store(path, lazy=False)

    def test_load_respects_subclass(self, saved_store):
        _, path = saved_store

        class MyStore(SynopsisStore):
            pass

        assert type(MyStore.load(path)) is MyStore
        assert type(SynopsisStore.load(path)) is SynopsisStore

    def test_swapped_same_family_payloads_detected(self, tmp_path):
        # Two same-family same-n entries whose payload files are swapped on
        # disk must fail hydration, not serve crossed data (regression).
        values = small_signal(100, seed=4)
        store = SynopsisStore()
        store.register("a", values, family="merging", k=3)
        store.register("b", 2.0 * values, family="merging", k=3)
        path = tmp_path / "store"
        store.save(path, layout="npz")
        a, b = path / "entry-0000.npz", path / "entry-0001.npz"
        tmp = path / "swap.npz"
        a.rename(tmp), b.rename(a), tmp.rename(b)
        loaded = load_store(path)
        with pytest.raises(StoreCorruptionError, match="swapped"):
            QueryEngine(loaded).range_sum("a", 0, 10)

    def test_inspect_rotted_record_errors_cleanly(self, saved_store, capsys):
        _, path = saved_store
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["entries"][0] = "rotted"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SystemExit, match="invalid manifest entry"):
            main(["inspect", str(path)])

    def test_replaced_directory_detected_at_hydration(self, saved_store):
        # A lazy reader must not silently serve payloads from a *newer*
        # save of the same directory under the old metadata (regression).
        store, path = saved_store
        loaded = SynopsisStore.load(path)  # lazy: nothing hydrated yet
        store.save(path, layout="npz")  # same entries, different generation
        engine = QueryEngine(loaded)
        with pytest.raises(StoreCorruptionError, match="different\n?.*save"):
            engine.range_sum("a", 0, 10)
        # A fresh load of the replaced directory works, of course.
        assert QueryEngine(SynopsisStore.load(path)).range_sum("a", 0, 10)

    def test_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no synopsis store"):
            load_store(tmp_path / "nowhere")

    def test_failed_save_leaves_previous_store_intact(
        self, saved_store, monkeypatch
    ):
        store, path = saved_store
        from repro.serve import mmap_store

        calls = {"count": 0}
        real = mmap_store.SegmentWriter.add

        def exploding_add(self, payload):
            if calls["count"] >= 1:  # first payload lands, then the disk "fills"
                raise OSError("disk full (simulated)")
            calls["count"] += 1
            return real(self, payload)

        monkeypatch.setattr(mmap_store.SegmentWriter, "add", exploding_add)
        replacement = SynopsisStore()
        replacement.register("other", small_signal(60, seed=1), family="merging", k=2)
        replacement.register("more", small_signal(60, seed=2), family="merging", k=2)
        with pytest.raises(OSError, match="disk full"):
            replacement.save(path)
        monkeypatch.undo()
        again = load_store(path)  # the old store is untouched
        assert set(again.names()) == {"a", "b"}
        assert summary_metadata(again) == summary_metadata(store)
        leftovers = [p.name for p in path.parent.iterdir() if "tmp" in p.name]
        assert leftovers == []  # no temp directories left behind


# --------------------------------------------------------------------- #
# CLI: save / load / inspect / serve --store-dir
# --------------------------------------------------------------------- #


class TestPersistenceCLI:
    def test_save_load_inspect(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(
            ["save", "--n", "256", "--k", "4", "--families", "merging,wavelet",
             "--store-dir", store_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "saved 2 entries" in out

        assert main(["inspect", store_dir]) == 0
        out = capsys.readouterr().out
        assert "repro-synopsis-store schema=4 entries=2 segments=1" in out
        assert "payload=segment-0000.bin" in out

        assert main(["load", store_dir]) == 0
        out = capsys.readouterr().out
        assert "2 prefix tables warm" in out

    def test_serve_from_store_dir(self, tmp_path):
        import io

        from repro.serve.cli import serve_main

        store_dir = str(tmp_path / "store")
        assert main(
            ["save", "--n", "256", "--k", "4", "--families", "merging",
             "--store-dir", store_dir]
        ) == 0
        copy_dir = str(tmp_path / "copy")
        commands = io.StringIO(
            f"summary\nrange merging 0 100\nquantile merging 0.5\n"
            f"save {copy_dir}\nquit\n"
        )
        out = io.StringIO()
        assert serve_main(
            ["--store-dir", store_dir], stdin=commands, stdout=out
        ) == 0
        text = out.getvalue()
        assert "serving 1 synopses of store" in text
        assert "family=merging" in text
        assert f"saved 1 entries to {copy_dir}" in text
        assert set(SynopsisStore.load(copy_dir).names()) == {"merging"}

    def test_inspect_missing_store_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no synopsis store"):
            main(["inspect", str(tmp_path / "nope")])
        with pytest.raises(SystemExit, match="no synopsis store"):
            main(["load", str(tmp_path / "nope")])

    def test_serve_corrupt_store_errors_cleanly(self, tmp_path):
        from repro.serve.cli import serve_main

        store_dir = tmp_path / "store"
        assert main(
            ["save", "--n", "128", "--k", "2", "--families", "merging",
             "--store-dir", str(store_dir)]
        ) == 0
        (store_dir / "manifest.json").write_text("{ truncated")
        with pytest.raises(SystemExit, match="unreadable store manifest"):
            serve_main(["--store-dir", str(store_dir)])
