"""Unit and property tests for repro.core.histogram."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Histogram, Partition, PrefixSums, SparseFunction, flatten

from helpers import dense_arrays, sparse_functions


@pytest.fixture
def simple_hist():
    return Histogram(Partition(10, [3, 6, 9]), [1.0, 5.0, 2.0])


class TestConstruction:
    def test_basic(self, simple_hist):
        assert simple_hist.n == 10
        assert simple_hist.num_pieces == 3

    def test_value_count_mismatch(self):
        with pytest.raises(ValueError, match="one value per interval"):
            Histogram(Partition(10, [3, 9]), [1.0])

    def test_constant(self):
        h = Histogram.constant(7, 4.2)
        assert h.num_pieces == 1
        assert h(3) == 4.2
        assert h.total_mass() == pytest.approx(7 * 4.2)

    def test_from_dense_merges_runs(self):
        h = Histogram.from_dense(np.asarray([1.0, 1.0, 2.0, 2.0, 2.0, 1.0]))
        assert h.num_pieces == 3
        assert h.pieces() == [(0, 1, 1.0), (2, 4, 2.0), (5, 5, 1.0)]

    def test_from_dense_rejects_empty(self):
        with pytest.raises(ValueError):
            Histogram.from_dense(np.asarray([]))

    @given(dense_arrays(min_size=1, max_size=30))
    def test_from_dense_round_trip(self, arr):
        h = Histogram.from_dense(arr)
        np.testing.assert_array_equal(h.to_dense(), arr)


class TestEvaluation:
    def test_scalar(self, simple_hist):
        assert simple_hist(0) == 1.0
        assert simple_hist(3) == 1.0
        assert simple_hist(4) == 5.0
        assert simple_hist(9) == 2.0

    def test_vector(self, simple_hist):
        np.testing.assert_array_equal(
            simple_hist(np.asarray([0, 4, 7])), [1.0, 5.0, 2.0]
        )

    def test_to_dense(self, simple_hist):
        expected = [1.0] * 4 + [5.0] * 3 + [2.0] * 3
        np.testing.assert_array_equal(simple_hist.to_dense(), expected)

    def test_pieces(self, simple_hist):
        assert simple_hist.pieces() == [(0, 3, 1.0), (4, 6, 5.0), (7, 9, 2.0)]


class TestMassAndDistribution:
    def test_total_mass(self, simple_hist):
        assert simple_hist.total_mass() == pytest.approx(4 + 15 + 6)

    def test_is_distribution(self):
        h = Histogram(Partition(4, [1, 3]), [0.3, 0.2])
        assert h.is_distribution()

    def test_not_distribution_wrong_mass(self, simple_hist):
        assert not simple_hist.is_distribution()

    def test_not_distribution_negative(self):
        h = Histogram(Partition(4, [1, 3]), [0.6, -0.1])
        assert not h.is_distribution()

    def test_normalized(self, simple_hist):
        normed = simple_hist.normalized()
        assert normed.total_mass() == pytest.approx(1.0)

    def test_normalize_zero_mass_raises(self):
        h = Histogram.constant(4, 0.0)
        with pytest.raises(ValueError, match="zero-mass"):
            h.normalized()

    def test_clipped_nonnegative(self):
        h = Histogram(Partition(4, [1, 3]), [-1.0, 2.0])
        clipped = h.clipped_nonnegative()
        assert clipped(0) == 0.0
        assert clipped(2) == 2.0


class TestL2Geometry:
    def test_dense_distance(self, simple_hist):
        target = simple_hist.to_dense()
        assert simple_hist.l2_to_dense(target) == 0.0
        target[0] += 3.0
        assert simple_hist.l2_to_dense(target) == pytest.approx(3.0)

    def test_sparse_distance_matches_dense(self, simple_hist, sparse_signal):
        q10 = SparseFunction(10, [2, 7], [1.5, -0.5])
        via_sparse = simple_hist.l2_sq_to_sparse(q10)
        via_dense = simple_hist.l2_sq_to_dense(q10.to_dense())
        assert via_sparse == pytest.approx(via_dense)

    def test_histogram_distance_matches_dense(self, simple_hist):
        other = Histogram(Partition(10, [4, 9]), [2.0, 3.0])
        exact = simple_hist.l2_sq_to_histogram(other)
        dense = float(np.sum((simple_hist.to_dense() - other.to_dense()) ** 2))
        assert exact == pytest.approx(dense)

    def test_histogram_distance_to_self_zero(self, simple_hist):
        assert simple_hist.l2_to_histogram(simple_hist) == 0.0

    def test_size_mismatch_raises(self, simple_hist):
        with pytest.raises(ValueError, match="universe"):
            simple_hist.l2_to_dense(np.zeros(5))
        with pytest.raises(ValueError, match="universe"):
            simple_hist.l2_sq_to_sparse(SparseFunction(5, [], []))
        with pytest.raises(ValueError, match="universe"):
            simple_hist.l2_sq_to_histogram(Histogram.constant(5, 1.0))

    @given(sparse_functions())
    def test_sparse_vs_dense_distance_property(self, q):
        part = Partition.from_boundaries(q.n, [q.n // 3, (2 * q.n) // 3])
        values = np.linspace(-1.0, 1.0, part.num_intervals)
        h = Histogram(part, values)
        assert h.l2_sq_to_sparse(q) == pytest.approx(
            h.l2_sq_to_dense(q.to_dense()), abs=1e-8
        )


class TestFlattening:
    def test_flatten_means(self):
        q = SparseFunction.from_dense(np.asarray([1.0, 3.0, 10.0, 10.0]))
        part = Partition(4, [1, 3])
        h = flatten(q, part)
        assert h(0) == pytest.approx(2.0)
        assert h(2) == pytest.approx(10.0)

    def test_flatten_preserves_mass(self):
        rng = np.random.default_rng(1)
        dense = rng.random(40)
        q = SparseFunction.from_dense(dense)
        part = Partition.from_boundaries(40, [7, 19, 30])
        h = flatten(q, part)
        assert h.total_mass() == pytest.approx(dense.sum())

    def test_flatten_size_mismatch(self):
        q = SparseFunction(5, [], [])
        with pytest.raises(ValueError, match="universe"):
            flatten(q, Partition.trivial(6))

    def test_flatten_with_precomputed_prefix(self, sparse_signal):
        ps = PrefixSums(sparse_signal)
        part = Partition.from_boundaries(50, [24])
        a = flatten(sparse_signal, part, prefix=ps)
        b = flatten(sparse_signal, part)
        np.testing.assert_allclose(a.values, b.values)

    @given(sparse_functions(), st.integers(min_value=1, max_value=5))
    def test_flatten_is_best_piecewise_constant(self, q, pieces):
        """The flattening minimizes l2 among functions constant on the
        partition (Definition 3.1)."""
        cuts = np.linspace(0, q.n - 1, pieces + 1).astype(int)[1:]
        part = Partition.from_boundaries(q.n, cuts)
        h = flatten(q, part)
        base = h.l2_sq_to_sparse(q)
        rng = np.random.default_rng(0)
        for _ in range(5):
            perturbed = Histogram(part, h.values + rng.normal(0, 0.1, h.values.size))
            assert perturbed.l2_sq_to_sparse(q) >= base - 1e-9
