"""Tests for sliding-window streaming: WindowedStreamLearner, the
Misra–Gries sketch, heavy hitters through every serving layer, and
mid-window persistence."""

import io
import json
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AsyncServingFrontend,
    MisraGries,
    QueryEngine,
    QueryRequest,
    ShardRouter,
    SynopsisStore,
    WindowedStreamLearner,
)
from repro.core.merging import construct_histogram_partition
from repro.serve.cli import serve_main
from repro.__main__ import main


def skewed_stream(rng, n, size, heavy=(), heavy_mass=0.3):
    """A stream where each position in ``heavy`` gets an equal share of
    ``heavy_mass`` and the rest is uniform."""
    weights = np.full(n, (1.0 - heavy_mass * bool(heavy)) / n)
    for position in heavy:
        weights[position] += heavy_mass / len(heavy)
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def window_counts(learner):
    """Exact counts of the learner's live window, via its epoch ring."""
    counts = Counter()
    for epoch in learner._epochs:
        counts.update(dict(zip(epoch.positions.tolist(), epoch.counts.tolist())))
    return counts


# --------------------------------------------------------------------- #
# Misra–Gries sketch
# --------------------------------------------------------------------- #


class TestMisraGries:
    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(
            st.lists(st.integers(min_value=0, max_value=30), max_size=50),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_underestimates_within_bound(self, capacity, batches):
        """The classic deterministic MG bound: counters never exceed true
        counts and undershoot by at most total / (capacity + 1)."""
        sketch = MisraGries(capacity)
        truth: Counter = Counter()
        for batch in batches:
            arr = np.asarray(batch, dtype=np.int64)
            positions, counts = np.unique(arr, return_counts=True)
            sketch.update(positions, counts)
            truth.update(batch)
        total = sum(truth.values())
        assert sketch.total == total
        assert sketch.num_counters <= capacity
        positions, estimates = sketch.estimates()
        estimated = dict(zip(positions.tolist(), estimates.tolist()))
        slack = total / (capacity + 1)
        for item, true_count in truth.items():
            estimate = estimated.get(item, 0)
            assert 0 <= true_count - estimate <= slack, (item, true_count, estimate)
        for item in estimated:
            assert item in truth  # never invents items

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=20), max_size=60),
        st.lists(st.integers(min_value=0, max_value=20), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_bound(self, capacity, left, right):
        """Merged sketches keep the bound over the combined mass."""
        sketches = []
        truth: Counter = Counter()
        for batch in (left, right):
            sketch = MisraGries(capacity)
            if batch:
                positions, counts = np.unique(
                    np.asarray(batch, dtype=np.int64), return_counts=True
                )
                sketch.update(positions, counts)
            sketches.append(sketch)
            truth.update(batch)
        merged = sketches[0].merge(sketches[1])
        total = sum(truth.values())
        assert merged.total == total
        assert merged.num_counters <= capacity
        positions, estimates = merged.estimates()
        estimated = dict(zip(positions.tolist(), estimates.tolist()))
        slack = total / (capacity + 1)
        for item, true_count in truth.items():
            estimate = estimated.get(item, 0)
            assert 0 <= true_count - estimate <= slack

    def test_state_round_trip(self):
        sketch = MisraGries(3)
        sketch.update(np.asarray([1, 5, 9]), np.asarray([7, 2, 4]))
        sketch.update(np.asarray([2, 5]), np.asarray([3, 3]))
        clone = MisraGries.from_state(json.loads(json.dumps(sketch.state_dict())))
        assert clone.capacity == sketch.capacity
        assert clone.total == sketch.total
        np.testing.assert_array_equal(clone.estimates()[0], sketch.estimates()[0])
        np.testing.assert_array_equal(clone.estimates()[1], sketch.estimates()[1])

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            MisraGries(0)
        with pytest.raises(ValueError, match="strictly increasing"):
            MisraGries(4, positions=[3, 1], counts=[1, 1], total=2)
        with pytest.raises(ValueError, match="more counters"):
            MisraGries(1, positions=[1, 2], counts=[1, 1], total=2)


# --------------------------------------------------------------------- #
# Window mechanics: epoch ring, expiry, empirical
# --------------------------------------------------------------------- #


class TestWindowMechanics:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=39), max_size=120),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=4, max_value=60),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_equals_trailing_samples(self, batches, window, epochs):
        """Expiry correctness: the window aggregate is exactly the counts
        of the last ``window_total`` samples, and the window length stays
        in [window_size, window_size + epoch_size) once filled."""
        epochs = min(epochs, window)
        learner = WindowedStreamLearner(
            n=40, k=3, window_size=window, num_epochs=epochs
        )
        stream = []
        for batch in batches:
            learner.extend(np.asarray(batch, dtype=np.int64))
            stream.extend(batch)
        assert learner.samples_seen == len(stream)
        assert learner.window_total <= len(stream)
        if len(stream) >= window:
            assert window <= learner.window_total < window + learner.epoch_size
        tail = stream[len(stream) - learner.window_total :]
        reference = Counter(tail)
        expected = sorted(reference)
        positions, counts = learner.window_counts()
        assert positions.tolist() == expected
        assert counts.tolist() == [reference[p] for p in expected]
        # The ring agrees with the aggregate.
        assert window_counts(learner) == reference

    def test_one_batch_spans_many_epochs(self):
        learner = WindowedStreamLearner(n=10, k=2, window_size=40, num_epochs=4)
        learner.extend(np.tile(np.arange(10), 13))  # 130 samples at once
        assert learner.window_total < 40 + learner.epoch_size
        assert learner.samples_seen == 130
        total = sum(epoch.total for epoch in learner._epochs)
        assert total == learner.window_total

    def test_sparse_aggregate_path_matches_dense(self):
        """The huge-universe sorted-merge aggregate (subtract on expiry)
        produces the same window as the dense scatter-add path."""
        rng = np.random.default_rng(6)
        dense = WindowedStreamLearner(n=500, k=3, window_size=1500, num_epochs=3)
        sparse = WindowedStreamLearner(n=500, k=3, window_size=1500, num_epochs=3)
        sparse._window.use_dense = False  # pin the fallback path
        for _ in range(5):
            batch = rng.integers(0, 500, 700)
            dense.extend(batch)
            sparse.extend(batch)
        for got, want in zip(dense.window_counts(), sparse.window_counts()):
            np.testing.assert_array_equal(got, want)
        assert dense.window_total == sparse.window_total
        assert dense.heavy_hitters(0.05) == sparse.heavy_hitters(0.05)

    def test_empirical_is_window_distribution_and_cached(self):
        learner = WindowedStreamLearner(n=20, k=2, window_size=10, num_epochs=2)
        learner.extend(np.full(10, 3))
        learner.extend(np.full(10, 7))  # the 3s have fully expired
        empirical = learner.empirical()
        assert learner.empirical() is empirical
        np.testing.assert_array_equal(empirical.indices, [7])
        np.testing.assert_allclose(empirical.values, [1.0])
        learner.extend(np.asarray([4]))
        assert learner.empirical() is not empirical

    def test_empty_batch_noop_and_validation(self):
        learner = WindowedStreamLearner(n=10, k=2, window_size=5)
        learner.extend(np.asarray([], dtype=np.int64))
        assert learner.samples_seen == 0
        with pytest.raises(ValueError, match=r"\[0, n\)"):
            learner.extend(np.asarray([10]))
        with pytest.raises(ValueError, match="no samples"):
            learner.empirical()
        assert learner.heavy_hitters(0.5) == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window size"):
            WindowedStreamLearner(n=10, k=2, window_size=0)
        with pytest.raises(ValueError, match="num_epochs"):
            WindowedStreamLearner(n=10, k=2, window_size=4, num_epochs=5)
        with pytest.raises(ValueError, match="sketch eps"):
            WindowedStreamLearner(n=10, k=2, window_size=4, sketch_eps=1.5)
        with pytest.raises(ValueError, match="refresh_epochs"):
            WindowedStreamLearner(n=10, k=2, window_size=4, refresh_epochs=0)


# --------------------------------------------------------------------- #
# Heavy hitters: the (phi - eps) guarantee
# --------------------------------------------------------------------- #


def assert_heavy_hitter_guarantee(learner, phi):
    """Both directions of the guarantee plus counter soundness."""
    truth = window_counts(learner)
    total = learner.window_total
    hitters = learner.heavy_hitters(phi)
    reported = dict(hitters)
    for position, estimate in hitters:
        assert estimate <= truth[position]  # never overestimates
    for position, true_count in truth.items():
        if true_count >= phi * total:
            assert position in reported, (position, true_count, phi * total)
    for position in reported:
        assert truth[position] >= (phi - learner.sketch_eps) * total
    # Sorted heaviest-first by estimate.
    estimates = [estimate for _, estimate in hitters]
    assert estimates == sorted(estimates, reverse=True)


class TestHeavyHitters:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=19), max_size=80),
            min_size=1,
            max_size=6,
        ),
        st.sampled_from([0.1, 0.2, 0.4]),
    )
    @settings(max_examples=80, deadline=None)
    def test_guarantee_on_arbitrary_streams(self, batches, phi):
        learner = WindowedStreamLearner(
            n=20, k=3, window_size=60, num_epochs=3, sketch_eps=0.05
        )
        for batch in batches:
            learner.extend(np.asarray(batch, dtype=np.int64))
        if learner.window_total:
            assert_heavy_hitter_guarantee(learner, phi)

    def test_planted_hitters_are_found(self):
        rng = np.random.default_rng(5)
        learner = WindowedStreamLearner(
            n=1000, k=4, window_size=20_000, sketch_eps=0.01
        )
        learner.extend(
            skewed_stream(rng, 1000, 50_000, heavy=(17, 400), heavy_mass=0.4)
        )
        hitters = learner.heavy_hitters(0.1)
        assert {position for position, _ in hitters} == {17, 400}
        assert_heavy_hitter_guarantee(learner, 0.1)

    def test_expired_hitter_disappears(self):
        """Adversarial slide: a position that dominated the early stream
        but stopped arriving must drop out once the window passes it."""
        rng = np.random.default_rng(9)
        learner = WindowedStreamLearner(
            n=100, k=3, window_size=5_000, num_epochs=5, sketch_eps=0.02
        )
        learner.extend(skewed_stream(rng, 100, 5_000, heavy=(42,), heavy_mass=0.5))
        assert 42 in {position for position, _ in learner.heavy_hitters(0.1)}
        # Two full windows of traffic in which 42 never appears.
        clean = skewed_stream(rng, 100, 10_000, heavy=(7,), heavy_mass=0.4)
        learner.extend(clean[clean != 42])
        hitters = dict(learner.heavy_hitters(0.1))
        assert 42 not in hitters
        assert 7 in hitters
        assert_heavy_hitter_guarantee(learner, 0.1)

    def test_phase_change_within_window(self):
        """A hitter arriving only in the newest epochs is still caught."""
        rng = np.random.default_rng(13)
        learner = WindowedStreamLearner(
            n=50, k=3, window_size=4_000, num_epochs=8, sketch_eps=0.02
        )
        learner.extend(skewed_stream(rng, 50, 3_000))  # uniform phase
        learner.extend(np.full(1_000, 31))  # burst phase
        hitters = dict(learner.heavy_hitters(0.2))
        assert 31 in hitters
        assert_heavy_hitter_guarantee(learner, 0.2)

    def test_phi_validation(self):
        learner = WindowedStreamLearner(
            n=10, k=2, window_size=5, sketch_eps=0.1
        )
        with pytest.raises(ValueError, match="phi must lie"):
            learner.heavy_hitters(0.0)
        with pytest.raises(ValueError, match="phi must lie"):
            learner.heavy_hitters(1.5)
        with pytest.raises(ValueError, match="exceed the sketch eps"):
            learner.heavy_hitters(0.05)


# --------------------------------------------------------------------- #
# Windowed histogram: the paper's merging stage over the live window
# --------------------------------------------------------------------- #


class TestWindowedHistogram:
    def test_matches_merging_stage_over_window(self):
        rng = np.random.default_rng(3)
        learner = WindowedStreamLearner(n=200, k=5, window_size=2_000)
        learner.extend(rng.integers(0, 200, 5_000))
        streamed = learner.histogram(force_refresh=True)
        reference = construct_histogram_partition(
            learner.empirical(), 5, delta=1000.0, gamma=1.0
        ).histogram
        assert streamed == reference
        assert streamed.is_distribution()

    def test_refresh_cadence_is_epoch_granular(self):
        learner = WindowedStreamLearner(
            n=50, k=3, window_size=1_000, num_epochs=10, refresh_epochs=2
        )
        rng = np.random.default_rng(4)
        learner.extend(rng.integers(0, 50, 500))
        first = learner.histogram()
        learner.extend(rng.integers(0, 50, 150))  # < 2 epochs of drift
        assert learner.histogram() is first
        learner.extend(rng.integers(0, 50, 100))  # crosses 2 * 100 samples
        assert learner.histogram() is not first

    def test_zero_watermark_always_stale(self):
        learner = WindowedStreamLearner(n=10, k=2, window_size=100)
        learner.extend(np.asarray([1]))
        assert learner.stale_since(0)
        assert not learner.stale_since(1)


# --------------------------------------------------------------------- #
# Persistence: resume mid-window with identical answers
# --------------------------------------------------------------------- #


def make_learner(seed=7, samples=7_000):
    rng = np.random.default_rng(seed)
    learner = WindowedStreamLearner(
        n=300, k=4, window_size=3_000, num_epochs=6, sketch_eps=0.02
    )
    learner.extend(
        skewed_stream(rng, 300, samples, heavy=(12, 250), heavy_mass=0.35)
    )
    return learner


class TestWindowedPersistence:
    def test_state_round_trip_mid_window(self):
        learner = make_learner()
        clone = WindowedStreamLearner.from_state(
            json.loads(json.dumps(learner.state_dict()))
        )
        assert clone.samples_seen == learner.samples_seen
        assert clone.window_total == learner.window_total
        assert clone.heavy_hitters(0.1) == learner.heavy_hitters(0.1)
        for got, want in zip(clone.window_counts(), learner.window_counts()):
            np.testing.assert_array_equal(got, want)
        assert clone.histogram() == learner.histogram()
        # The revived learner keeps answering identically as the stream
        # continues — same epoch boundaries, same expiries, same sketches.
        rng = np.random.default_rng(21)
        for _ in range(3):
            batch = skewed_stream(rng, 300, 1_700, heavy=(99,), heavy_mass=0.5)
            learner.extend(batch)
            clone.extend(batch)
            assert clone.heavy_hitters(0.1) == learner.heavy_hitters(0.1)
            assert clone.window_total == learner.window_total
            assert clone.histogram(force_refresh=True) == learner.histogram(
                force_refresh=True
            )

    def test_cached_histogram_and_watermark_round_trip(self):
        learner = make_learner()
        cached = learner.histogram()
        clone = WindowedStreamLearner.from_state(
            json.loads(json.dumps(learner.state_dict()))
        )
        assert clone.histogram() == cached
        assert clone._cached_at == learner._cached_at

    def test_from_state_validation(self):
        state = json.loads(json.dumps(make_learner().state_dict()))
        bad = json.loads(json.dumps(state))
        bad["total"] = 1  # smaller than the window total
        with pytest.raises(ValueError, match="lifetime total"):
            WindowedStreamLearner.from_state(bad)
        bad = json.loads(json.dumps(state))
        bad["epochs"] = []
        with pytest.raises(ValueError, match="epoch list"):
            WindowedStreamLearner.from_state(bad)
        bad = json.loads(json.dumps(state))
        bad["epochs"][0]["total"] = bad["epochs"][0]["total"] + 1
        with pytest.raises(ValueError, match="does not match"):
            WindowedStreamLearner.from_state(bad)
        bad = json.loads(json.dumps(state))
        bad["kind"] = "streaming_learner"
        with pytest.raises(ValueError, match="does not match"):
            WindowedStreamLearner.from_state(bad)
        bad = json.loads(json.dumps(state))
        bad["epochs"][0]["sketch"]["positions"][-1] = bad["n"] + 5
        with pytest.raises(ValueError, match="sketch positions"):
            WindowedStreamLearner.from_state(bad)

    def test_dense_subtract_validates_before_mutation(self):
        # Review fix: the dense aggregate path must reject (not silently
        # corrupt) subtraction of counts that are not fully present.
        from repro.sampling.streaming import CountAggregate

        agg = CountAggregate(100, use_dense=True)
        agg.add_unique(np.asarray([3, 7]), np.asarray([5, 5]))
        with pytest.raises(ValueError, match="more counts than present"):
            agg.subtract_unique(np.asarray([3]), np.asarray([9]))
        with pytest.raises(ValueError, match="more counts than present"):
            agg.subtract_unique(np.asarray([4]), np.asarray([1]))
        positions, counts = agg.arrays()
        np.testing.assert_array_equal(positions, [3, 7])
        np.testing.assert_array_equal(counts, [5, 5])


# --------------------------------------------------------------------- #
# Serving: store, engine, router, front end, persistence, CLI
# --------------------------------------------------------------------- #


@pytest.fixture
def served_store():
    store = SynopsisStore()
    store.register_stream("window", make_learner())
    rng = np.random.default_rng(2)
    store.register(
        "plain", np.abs(rng.normal(1.0, 0.4, 300)) + 1e-6, family="merging", k=4
    )
    return store


class TestWindowedServing:
    def test_store_and_engine_answer(self, served_store):
        engine = QueryEngine(served_store)
        expected = served_store["window"].learner.heavy_hitters(0.1)
        assert expected  # the fixture plants real hitters
        assert served_store.heavy_hitters("window", 0.1) == expected
        assert engine.heavy_hitters("window", 0.1) == expected

    def test_non_windowed_entries_rejected(self, served_store):
        engine = QueryEngine(served_store)
        with pytest.raises(ValueError, match="not backed by a sliding-window"):
            engine.heavy_hitters("plain", 0.1)
        learner = make_learner(samples=500)
        from repro import StreamingHistogramLearner

        growing = StreamingHistogramLearner(n=10, k=2)
        growing.extend(np.asarray([1, 2, 3]))
        served_store.register_stream("growing", growing)
        with pytest.raises(ValueError, match="not backed by a sliding-window"):
            served_store.heavy_hitters("growing", 0.1)

    def test_extend_refreshes_from_live_window(self, served_store):
        """A windowed entry's synopsis tracks the *window*, not the full
        stream: after the window slides onto a shifted distribution, the
        refreshed synopsis is built from the new window's empirical."""
        entry = served_store["window"]
        learner = entry.learner
        version_before = entry.version
        rng = np.random.default_rng(31)
        served_store.extend(
            "window", skewed_stream(rng, 300, 8_000, heavy=(5,), heavy_mass=0.6)
        )
        assert entry.version > version_before
        rebuilt = entry.result.synopsis
        reference = construct_histogram_partition(
            learner.empirical(), learner.k, delta=1000.0, gamma=1.0
        ).histogram
        assert rebuilt == reference

    def test_router_and_frontend(self, served_store):
        router = ShardRouter(num_shards=2)
        router.register_stream("window", make_learner())
        rng = np.random.default_rng(2)
        router.register(
            "plain",
            np.abs(rng.normal(1.0, 0.4, 300)) + 1e-6,
            family="merging",
            k=4,
        )
        expected = router["window"].learner.heavy_hitters(0.1)
        assert router.heavy_hitters("window", 0.1) == expected
        with AsyncServingFrontend(router) as frontend:
            results = frontend.serve(
                [
                    QueryRequest("heavy_hitters", "window", (0.1,)),
                    QueryRequest("range_sum", "plain", (0, 100)),
                    QueryRequest("heavy_hitters", "plain", (0.1,)),
                    QueryRequest("heavy_hitters", "missing", (0.1,)),
                ]
            )
        assert results[0].ok and results[0].value == expected
        assert results[0].version == router["window"].version
        assert results[1].ok
        assert not results[2].ok and "sliding-window" in results[2].error
        assert not results[3].ok and "registered" in results[3].error

    def test_store_round_trip_resumes_mid_window(self, served_store, tmp_path):
        served_store.save(tmp_path / "store")
        loaded = SynopsisStore.load(tmp_path / "store")
        meta = loaded["window"].describe()  # frozen meta, before hydration
        assert meta["windowed"] is True
        assert meta["window_total"] == served_store["window"].learner.window_total
        assert loaded.heavy_hitters("window", 0.1) == served_store.heavy_hitters(
            "window", 0.1
        )
        rng = np.random.default_rng(8)
        batch = skewed_stream(rng, 300, 2_000, heavy=(77,), heavy_mass=0.5)
        served_store.extend("window", batch)
        loaded.extend("window", batch)
        assert loaded.heavy_hitters("window", 0.1) == served_store.heavy_hitters(
            "window", 0.1
        )
        assert loaded["window"].version == served_store["window"].version
        assert (
            loaded["window"].result.synopsis
            == served_store["window"].result.synopsis
        )

    def test_sharded_round_trip(self, tmp_path):
        router = ShardRouter(num_shards=3)
        router.register_stream("window", make_learner())
        router.save(tmp_path / "sharded")
        loaded = ShardRouter.load(tmp_path / "sharded")
        assert loaded.heavy_hitters("window", 0.1) == router.heavy_hitters(
            "window", 0.1
        )
        assert loaded.describe("window")["windowed"] is True


class TestWindowedCLI:
    def test_serve_heavy_command(self):
        out = io.StringIO()
        commands = io.StringIO(
            "summary\nheavy windowed 0.02\nheavy merging 0.02\n"
            "heavy windowed 2.0\nquit\n"
        )
        assert (
            serve_main(
                ["--dataset", "steps", "--n", "16", "--k", "3",
                 "--families", "merging", "--window", "2000"],
                stdin=commands,
                stdout=out,
            )
            == 0
        )
        text = out.getvalue()
        assert "windowed" in text and "window=" in text
        assert "count>=" in text  # n=16: every position clears phi=0.02
        assert "not backed by a sliding-window" in text
        assert "error: phi must lie" in text

    def test_query_heavy_hitters_kind(self, capsys):
        assert (
            main(
                ["query", "--kind", "heavy_hitters", "--dataset", "steps",
                 "--n", "16", "--k", "3", "--window", "3000",
                 "--num-queries", "10", "--phi", "0.05"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "windowed stream of 'steps'" in out
        assert "heavy_hitters(phi=0.05) x 10" in out
        assert "queries/sec" in out

    def test_window_flags_with_other_kinds_rejected(self):
        # Review fix: --window/--phi were silently ignored for every kind
        # except heavy_hitters.
        with pytest.raises(SystemExit, match="only apply to"):
            main(["query", "--kind", "cdf", "--n", "64", "--window", "500"])
        with pytest.raises(SystemExit, match="only apply to"):
            main(["query", "--kind", "range_sum", "--n", "64", "--phi", "0.1"])

    def test_window_with_store_dir_rejected(self, tmp_path):
        # Review fix: --window was silently ignored with --store-dir.
        store_dir = str(tmp_path / "store")
        assert (
            main(
                ["save", "--n", "16", "--k", "3", "--families", "merging",
                 "--store-dir", store_dir]
            )
            == 0
        )
        with pytest.raises(SystemExit, match="cannot be combined"):
            serve_main(["--store-dir", store_dir, "--window", "1000"])

    def test_save_load_window_round_trip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert (
            main(
                ["save", "--n", "16", "--k", "3", "--families", "merging",
                 "--window", "1000", "--store-dir", store_dir]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "windowed" in out and "window=1000" in out
        assert main(["inspect", store_dir]) == 0
        out = capsys.readouterr().out
        assert "schema=4" in out and "window=1000" in out
        assert main(["load", store_dir]) == 0
        out = capsys.readouterr().out
        assert "window=1000" in out
        commands = io.StringIO("heavy windowed 0.02\nquit\n")
        out_io = io.StringIO()
        assert (
            serve_main(["--store-dir", store_dir], stdin=commands, stdout=out_io)
            == 0
        )
        assert "count>=" in out_io.getvalue()
